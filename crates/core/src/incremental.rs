//! Incremental BCindex maintenance under edge updates — single flips and
//! batched commits.
//!
//! The offline/online split of Section 6.3 only pays off at scale if the
//! offline [`BccIndex`] survives graph change. This module patches the two
//! per-vertex components in place after an edge flip, instead of rebuilding:
//!
//! * **label coreness δ** — an edge is *homogeneous* or it does not touch a
//!   label-induced subgraph at all, so only a homogeneous flip can move δ,
//!   and only inside the flipped edge's label group. Deletions run the
//!   Algorithm 4 cascade ([`bcc_cohesion::cascade_label_core_from_seeds`])
//!   over the old k-subcore seeded at the endpoints; insertions peel the
//!   (k+1)-core of the candidate set (the core-k vertices k-path-connected
//!   to the insertion, plus the old (k+1)-core) — the classical traversal
//!   bound: one edge moves δ by at most 1, and only for vertices with
//!   δ = min(δ(u), δ(v)).
//! * **butterfly degree χ** — χ counts wedges made of *cross* edges only,
//!   so only a heterogeneous flip can move it, and only for vertices in the
//!   flipped edge's closed neighborhood. Two-label graphs take the
//!   Algorithm 7 edge delta ([`bcc_butterfly::edge_decrement`], O(d²) per
//!   affected vertex); multi-label graphs recompute the aggregate χ locally
//!   ([`crate::index::hetero_butterfly_degree_of`]).
//!
//! **Batched commits.** [`patch_index_edge`] needs the pre- and post-flip
//! snapshots, so replaying a B-edge batch through it forces B CSR splices —
//! O(B·(|V|+|E|)) just to materialize graphs the cascades only *read*.
//! [`patch_index_batch`] removes that cost: it layers an
//! [`bcc_graph::OverlayGraph`] over the base snapshot, advances it one O(1)
//! edge flip at a time, and runs the identical cascades/deltas against the
//! overlay. The caller materializes the final snapshot once (e.g. via
//! [`bcc_graph::GraphDelta::apply`] or [`bcc_graph::OverlayGraph::materialize`]).
//!
//! The contract, pinned by the differential suites: after any sequence of
//! [`patch_index_edge`] calls — or one [`patch_index_batch`] over the same
//! changes — the index is **bit-identical** to `BccIndex::build` on the
//! final snapshot.

use bcc_butterfly::BipartiteCross;
use bcc_cohesion::{cascade_label_core_from_seeds, reduce_to_label_core, LabelCoreThresholds};
use bcc_graph::{
    BitSet, EdgeChange, EdgeOp, GraphRead, GraphView, LabeledGraph, OverlayGraph, VertexId,
    WedgeScratch,
};
use rustc_hash::FxHashSet;

use crate::index::{hetero_butterfly_degree_of_with, BccIndex};

/// Which index entries one [`patch_index_edge`] call moved.
#[derive(Clone, Debug, Default)]
pub struct PatchReport {
    /// Vertices whose label coreness δ changed (by exactly ±1).
    pub coreness_changed: Vec<VertexId>,
    /// Vertices whose butterfly degree χ changed.
    pub chi_changed: Vec<VertexId>,
}

impl PatchReport {
    /// True when the flip moved no index entry at all.
    pub fn is_empty(&self) -> bool {
        self.coreness_changed.is_empty() && self.chi_changed.is_empty()
    }
}

/// What one [`patch_index_batch`] call did across the whole batch.
#[derive(Clone, Debug, Default)]
pub struct BatchPatchReport {
    /// Number of edge changes applied.
    pub applied: usize,
    /// Vertices whose search-relevant state moved anywhere in the batch:
    /// every change's endpoints, their pre/post-flip neighborhoods, and
    /// every index entry the cascades/deltas changed — the union of what
    /// per-edge replay would have reported via [`affected_neighborhood`]
    /// plus its [`PatchReport`]s. This is the cache-invalidation scope.
    pub dirty: FxHashSet<u32>,
    /// How many per-change δ entry moves occurred (entries may recur).
    pub coreness_moves: usize,
    /// How many per-change χ entry moves occurred (entries may recur).
    pub chi_moves: usize,
    /// Wall time spent in Algorithm 4 δ cascades across the batch.
    pub time_cascade: std::time::Duration,
    /// Wall time spent in Algorithm 7 χ deltas across the batch.
    pub time_chi_delta: std::time::Duration,
}

/// The closed neighborhood an edge flip can influence: the endpoints plus
/// every neighbor either endpoint has in the pre- or post-flip snapshot.
/// Search results and index entries outside this set can only move through
/// the cascades, which [`PatchReport`] tracks separately.
pub fn affected_neighborhood(
    before: &LabeledGraph,
    after: &LabeledGraph,
    change: &EdgeChange,
) -> Vec<VertexId> {
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut out = Vec::new();
    for host in [before, after] {
        for w in [change.u, change.v] {
            if seen.insert(w.0) {
                out.push(w);
            }
            for &x in host.neighbors(w) {
                if seen.insert(x.0) {
                    out.push(x);
                }
            }
        }
    }
    out
}

/// [`affected_neighborhood`] evaluated on a single host containing the
/// pre-flip state: the post-flip neighborhoods add only the endpoints
/// themselves (an insert links `u` and `v`, a removal unlinks them), which
/// are already in the set — so one pre-flip read suffices.
fn affected_on<G: GraphRead>(host: &G, change: &EdgeChange) -> Vec<VertexId> {
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut out = Vec::new();
    for w in [change.u, change.v] {
        if seen.insert(w.0) {
            out.push(w);
        }
        for x in host.neighbors_iter(w) {
            if seen.insert(x.0) {
                out.push(x);
            }
        }
    }
    out
}

/// Patches `index` (valid for `before`) so it becomes valid for `after`,
/// where the two snapshots differ by exactly `change`. Returns which entries
/// moved.
///
/// `delta_max`/`chi_max` are refreshed from the patched arrays, so the index
/// stays self-consistent after every call.
pub fn patch_index_edge(
    index: &mut BccIndex,
    before: &LabeledGraph,
    after: &LabeledGraph,
    change: &EdgeChange,
) -> PatchReport {
    let mut report = PatchReport::default();
    if before.label(change.u) == before.label(change.v) {
        let label = after.label(change.u);
        let group =
            || after.vertices().filter(|&w| after.label(w) == label).collect::<Vec<_>>();
        patch_coreness(index, after, change, group, &mut report);
        if !report.coreness_changed.is_empty() {
            index.delta_max = index.label_coreness.iter().copied().max().unwrap_or(0);
        }
    } else {
        let affected = affected_neighborhood(before, after, change);
        // One flat scratch for every per-vertex delta of this flip.
        let mut scratch = WedgeScratch::new(after.vertex_count());
        if after.label_count() == 2 {
            // The Algorithm 7 edge delta is evaluated on whichever snapshot
            // contains the edge.
            let host = match change.op {
                EdgeOp::Insert => after,
                EdgeOp::Remove => before,
            };
            patch_chi_bipartite(index, host, change, &affected, &mut scratch, &mut report);
        } else {
            patch_chi_multilabel(index, after, &affected, &mut scratch, &mut report);
        }
        if !report.chi_changed.is_empty() {
            index.chi_max = index.butterfly_degree.iter().copied().max().unwrap_or(0);
        }
    }
    report
}

/// Applies a whole batch of edge changes to `index` (valid for `base`)
/// without materializing any intermediate snapshot: each change flips one
/// entry of a mutable adjacency overlay (O(1) for the graph part), then
/// runs the same Algorithm 4 cascade / Algorithm 7 delta the per-edge path
/// runs — against the overlay. Bit-identical to replaying the changes
/// through [`patch_index_edge`], at O(maintenance) instead of
/// O(B·(|V|+|E|)) + O(maintenance) total.
///
/// The changes must be sequentially applicable to `base` (the validated
/// order of a [`bcc_graph::GraphDelta`]). The final snapshot is *not*
/// built here — commit callers splice it once from the same delta.
pub fn patch_index_batch(
    index: &mut BccIndex,
    base: &LabeledGraph,
    changes: &[EdgeChange],
) -> BatchPatchReport {
    let mut overlay = OverlayGraph::new(base);
    let mut report = BatchPatchReport { applied: changes.len(), ..Default::default() };
    // One flat scratch serves every χ delta of the whole commit.
    let mut scratch = WedgeScratch::new(base.vertex_count());
    // Labels never move, so the per-label vertex lists the cascades seed
    // from are computed once per batch — a homogeneous flip then costs
    // O(label group + cascade), not O(|V|).
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); base.label_count()];
    for v in base.vertices() {
        groups[base.label(v).index()].push(v);
    }
    for change in changes {
        let mut step = PatchReport::default();
        // Pre-flip read: equals the per-edge affected_neighborhood (the
        // post state adds only the endpoints, which are always included).
        let affected = affected_on(&overlay, change);
        for w in &affected {
            report.dirty.insert(w.0);
        }
        if overlay.label(change.u) == overlay.label(change.v) {
            overlay.flip(change);
            let group = || groups[overlay.label(change.u).index()].as_slice();
            let t = std::time::Instant::now();
            patch_coreness(index, &overlay, change, group, &mut step);
            report.time_cascade += t.elapsed();
        } else if overlay.label_count() == 2 {
            let t = std::time::Instant::now();
            match change.op {
                EdgeOp::Insert => {
                    overlay.flip(change);
                    patch_chi_bipartite(index, &overlay, change, &affected, &mut scratch, &mut step);
                }
                EdgeOp::Remove => {
                    // Evaluate while the overlay still contains the edge.
                    patch_chi_bipartite(index, &overlay, change, &affected, &mut scratch, &mut step);
                    overlay.flip(change);
                }
            }
            report.time_chi_delta += t.elapsed();
        } else {
            overlay.flip(change);
            let t = std::time::Instant::now();
            patch_chi_multilabel(index, &overlay, &affected, &mut scratch, &mut step);
            report.time_chi_delta += t.elapsed();
        }
        report.coreness_moves += step.coreness_changed.len();
        report.chi_moves += step.chi_changed.len();
        for w in step.coreness_changed.iter().chain(&step.chi_changed) {
            report.dirty.insert(w.0);
        }
    }
    // The maxima depend only on the final arrays, so one refresh per batch
    // lands on the same values as the per-edge path's per-change refreshes.
    if report.coreness_moves > 0 {
        index.delta_max = index.label_coreness.iter().copied().max().unwrap_or(0);
    }
    if report.chi_moves > 0 {
        index.chi_max = index.butterfly_degree.iter().copied().max().unwrap_or(0);
    }
    report
}

/// δ maintenance for a homogeneous flip, within the edge's label group.
/// `after` is any [`GraphRead`] of the post-flip graph — a spliced snapshot
/// on the per-edge path, the live overlay on the batched path. `group`
/// produces exactly the vertices carrying the flipped edge's label — lazy,
/// so the k = 0 removal early-out never pays for it (the per-edge path's
/// closure scans O(|V|); the batched path serves a precomputed slice).
fn patch_coreness<G: GraphRead, S: AsRef<[VertexId]>>(
    index: &mut BccIndex,
    after: &G,
    change: &EdgeChange,
    group: impl FnOnce() -> S,
    report: &mut PatchReport,
) {
    let (u, v) = (change.u, change.v);
    let label = after.label(u);
    let k = index.coreness(u).min(index.coreness(v));
    match change.op {
        EdgeOp::Remove => {
            if k == 0 {
                return; // neither endpoint was in any positive core
            }
            // The old k-core of the label group, on the post-flip snapshot.
            // Only the endpoints lost degree, so they are the only possible
            // cascade seeds (Algorithm 4).
            let mut alive = BitSet::new(after.vertex_count());
            for &w in group().as_ref() {
                debug_assert_eq!(after.label(w), label);
                if index.label_coreness[w.index()] >= k {
                    alive.insert(w.index());
                }
            }
            let mut view = GraphView::from_alive(after, alive);
            let mut thresholds = LabelCoreThresholds::new(after.label_count());
            thresholds.require(label, k);
            let removed = cascade_label_core_from_seeds(&mut view, &thresholds, &[u, v]);
            for w in removed {
                // Every peeled vertex had δ exactly k (deeper cores cannot
                // lose the flipped edge) and drops by exactly 1.
                index.label_coreness[w.index()] -= 1;
                report.coreness_changed.push(w);
            }
        }
        EdgeOp::Insert => {
            // Candidates: core-k vertices reachable from a core-k endpoint
            // through core-k vertices of the label group (the traversal
            // candidate set); only they can rise, to exactly k + 1.
            let mut in_candidates = BitSet::new(after.vertex_count());
            let mut queue = std::collections::VecDeque::new();
            for root in [u, v] {
                if index.coreness(root) == k && in_candidates.insert(root.index()) {
                    queue.push_back(root);
                }
            }
            while let Some(x) = queue.pop_front() {
                for w in after.neighbors_iter(x) {
                    if after.label(w) == label
                        && index.label_coreness[w.index()] == k
                        && in_candidates.insert(w.index())
                    {
                        queue.push_back(w);
                    }
                }
            }
            // Peel candidates ∪ old (k+1)-core down to the new (k+1)-core.
            let mut alive = in_candidates.clone();
            for &w in group().as_ref() {
                if index.label_coreness[w.index()] > k {
                    alive.insert(w.index());
                }
            }
            let mut view = GraphView::from_alive(after, alive);
            let mut thresholds = LabelCoreThresholds::new(after.label_count());
            thresholds.require(label, k + 1);
            reduce_to_label_core(&mut view, &thresholds);
            for w in view.alive_vertices() {
                if in_candidates.contains(w.index()) {
                    index.label_coreness[w.index()] = k + 1;
                    report.coreness_changed.push(w);
                }
            }
        }
    }
}

/// χ maintenance on a two-label graph: the aggregate χ *is* the bipartite
/// butterfly degree, so the Algorithm 7 edge delta applies verbatim. `host`
/// must contain the flipped edge (post-insert or pre-remove state).
fn patch_chi_bipartite<G: GraphRead>(
    index: &mut BccIndex,
    host: &G,
    change: &EdgeChange,
    affected: &[VertexId],
    scratch: &mut WedgeScratch,
    report: &mut PatchReport,
) {
    let cross = BipartiteCross::new(host.label(change.u), host.label(change.v));
    for &p in affected {
        let delta =
            bcc_butterfly::edge_decrement_with(host, cross, p, change.u, change.v, scratch);
        if delta == 0 {
            continue;
        }
        match change.op {
            EdgeOp::Insert => index.butterfly_degree[p.index()] += delta,
            EdgeOp::Remove => index.butterfly_degree[p.index()] -= delta,
        }
        report.chi_changed.push(p);
    }
}

/// χ maintenance with three or more labels: recompute the aggregate χ
/// locally on the post-flip graph — still O(d²) per affected vertex, never
/// a global recount.
fn patch_chi_multilabel<G: GraphRead>(
    index: &mut BccIndex,
    after: &G,
    affected: &[VertexId],
    scratch: &mut WedgeScratch,
    report: &mut PatchReport,
) {
    for &p in affected {
        let fresh = hetero_butterfly_degree_of_with(after, p, scratch);
        if fresh != index.butterfly_degree[p.index()] {
            index.butterfly_degree[p.index()] = fresh;
            report.chi_changed.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{apply_change, GraphBuilder};

    fn assert_index_eq(patched: &BccIndex, rebuilt: &BccIndex, context: &str) {
        assert_eq!(patched.label_coreness, rebuilt.label_coreness, "δ after {context}");
        assert_eq!(patched.butterfly_degree, rebuilt.butterfly_degree, "χ after {context}");
        assert_eq!(patched.delta_max, rebuilt.delta_max, "δ_max after {context}");
        assert_eq!(patched.chi_max, rebuilt.chi_max, "χ_max after {context}");
    }

    /// Two labeled 4-cliques bridged by a 2×2 butterfly.
    fn butterfly_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for grp in [&l, &r] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for &x in &l[..2] {
            for &y in &r[..2] {
                b.add_edge(x, y);
            }
        }
        b.build()
    }

    fn flip(graph: &LabeledGraph, u: u32, v: u32, op: EdgeOp) -> (LabeledGraph, EdgeChange) {
        let change = EdgeChange { u: VertexId(u), v: VertexId(v), op };
        (apply_change(graph, &change), change)
    }

    #[test]
    fn homogeneous_deletion_cascades_coreness() {
        let g = butterfly_graph();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 1, EdgeOp::Remove);
        let report = patch_index_edge(&mut index, &g, &after, &change);
        // The left 4-clique loses an edge: its 3-core collapses to a 2-core.
        assert_eq!(report.coreness_changed.len(), 4);
        assert!(report.chi_changed.is_empty(), "homogeneous flips never move χ");
        assert_index_eq(&index, &BccIndex::build(&after), "remove {0,1}");
    }

    #[test]
    fn homogeneous_insertion_raises_coreness() {
        let g = butterfly_graph();
        let (base, change) = flip(&g, 0, 1, EdgeOp::Remove);
        let mut index = BccIndex::build(&base);
        // Re-insert the edge: the 4-clique's 3-core re-forms.
        let restored = apply_change(&base, &EdgeChange { op: EdgeOp::Insert, ..change });
        let report = patch_index_edge(
            &mut index,
            &base,
            &restored,
            &EdgeChange { op: EdgeOp::Insert, ..change },
        );
        assert_eq!(report.coreness_changed.len(), 4);
        assert_index_eq(&index, &BccIndex::build(&restored), "re-insert {0,1}");
    }

    #[test]
    fn heterogeneous_flip_moves_only_chi() {
        let g = butterfly_graph();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 4, EdgeOp::Remove);
        let report = patch_index_edge(&mut index, &g, &after, &change);
        assert!(report.coreness_changed.is_empty(), "heterogeneous flips never move δ");
        assert!(!report.chi_changed.is_empty());
        assert_index_eq(&index, &BccIndex::build(&after), "remove {0,4}");

        let restored = apply_change(&after, &EdgeChange { op: EdgeOp::Insert, ..change });
        patch_index_edge(&mut index, &after, &restored, &EdgeChange { op: EdgeOp::Insert, ..change });
        assert_index_eq(&index, &BccIndex::build(&restored), "re-insert {0,4}");
    }

    #[test]
    fn isolated_label_pair_insertion() {
        // Two vertices of one label with no homogeneous edges: inserting the
        // first edge lifts both from δ = 0 to δ = 1 (the k = 0 corner).
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c = b.add_vertex("B");
        b.add_edge(a0, c);
        b.add_edge(a1, c);
        let g = b.build();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 1, EdgeOp::Insert);
        let report = patch_index_edge(&mut index, &g, &after, &change);
        assert_eq!(report.coreness_changed.len(), 2);
        assert_index_eq(&index, &BccIndex::build(&after), "first homogeneous edge");
    }

    #[test]
    fn multi_label_chi_patching() {
        // Three labels exercise the aggregate-χ (non-bipartite) path.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..2).map(|_| b.add_vertex("A")).collect();
        let bs: Vec<_> = (0..2).map(|_| b.add_vertex("B")).collect();
        let cs: Vec<_> = (0..2).map(|_| b.add_vertex("C")).collect();
        for &x in &a {
            for &y in bs.iter().chain(&cs) {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 2, EdgeOp::Remove);
        patch_index_edge(&mut index, &g, &after, &change);
        assert_index_eq(&index, &BccIndex::build(&after), "3-label remove");
        let (restored, ins) = flip(&after, 0, 2, EdgeOp::Insert);
        patch_index_edge(&mut index, &after, &restored, &ins);
        assert_index_eq(&index, &BccIndex::build(&restored), "3-label insert");
    }

    #[test]
    fn batch_patch_matches_per_edge_on_fixtures() {
        // A mixed batch over the bridged-cliques fixture: homogeneous remove,
        // heterogeneous insert + remove, and a cancelling pair.
        let g = butterfly_graph();
        let changes = [
            EdgeChange { u: VertexId(0), v: VertexId(1), op: EdgeOp::Remove },
            EdgeChange { u: VertexId(2), v: VertexId(6), op: EdgeOp::Insert },
            EdgeChange { u: VertexId(0), v: VertexId(4), op: EdgeOp::Remove },
            EdgeChange { u: VertexId(0), v: VertexId(1), op: EdgeOp::Insert },
        ];
        let mut per_edge = BccIndex::build(&g);
        let mut batched = per_edge.clone();
        let mut dirty_ref: FxHashSet<u32> = FxHashSet::default();
        let mut stepped = g.clone();
        for change in &changes {
            let next = apply_change(&stepped, change);
            for w in affected_neighborhood(&stepped, &next, change) {
                dirty_ref.insert(w.0);
            }
            let report = patch_index_edge(&mut per_edge, &stepped, &next, change);
            for w in report.coreness_changed.iter().chain(&report.chi_changed) {
                dirty_ref.insert(w.0);
            }
            stepped = next;
        }
        let report = patch_index_batch(&mut batched, &g, &changes);
        assert_eq!(report.applied, 4);
        assert_index_eq(&batched, &per_edge, "batch vs per-edge replay");
        assert_index_eq(&batched, &BccIndex::build(&stepped), "batch vs rebuild");
        assert_eq!(report.dirty, dirty_ref, "batch dirty set is the per-edge union");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let g = butterfly_graph();
        let reference = BccIndex::build(&g);
        let mut index = reference.clone();
        let report = patch_index_batch(&mut index, &g, &[]);
        assert_eq!(report.applied, 0);
        assert!(report.dirty.is_empty());
        assert_index_eq(&index, &reference, "empty batch");
    }
}
