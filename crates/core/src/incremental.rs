//! Incremental BCindex maintenance under single-edge updates.
//!
//! The offline/online split of Section 6.3 only pays off at scale if the
//! offline [`BccIndex`] survives graph change. This module patches the two
//! per-vertex components in place after an edge flip, instead of rebuilding:
//!
//! * **label coreness δ** — an edge is *homogeneous* or it does not touch a
//!   label-induced subgraph at all, so only a homogeneous flip can move δ,
//!   and only inside the flipped edge's label group. Deletions run the
//!   Algorithm 4 cascade ([`bcc_cohesion::cascade_label_core_from_seeds`])
//!   over the old k-subcore seeded at the endpoints; insertions peel the
//!   (k+1)-core of the candidate set (the core-k vertices k-path-connected
//!   to the insertion, plus the old (k+1)-core) — the classical traversal
//!   bound: one edge moves δ by at most 1, and only for vertices with
//!   δ = min(δ(u), δ(v)).
//! * **butterfly degree χ** — χ counts wedges made of *cross* edges only,
//!   so only a heterogeneous flip can move it, and only for vertices in the
//!   flipped edge's closed neighborhood. Two-label graphs take the
//!   Algorithm 7 edge delta ([`bcc_butterfly::edge_decrement`], O(d²) per
//!   affected vertex); multi-label graphs recompute the aggregate χ locally
//!   ([`crate::index::hetero_butterfly_degree_of`]).
//!
//! The contract, pinned by the differential suites: after any sequence of
//! [`patch_index_edge`] calls the index is **bit-identical** to
//! `BccIndex::build` on the final snapshot.

use bcc_cohesion::{cascade_label_core_from_seeds, reduce_to_label_core, LabelCoreThresholds};
use bcc_graph::{BitSet, EdgeChange, EdgeOp, GraphView, LabeledGraph, VertexId};
use rustc_hash::FxHashSet;

use crate::index::{hetero_butterfly_degree_of, BccIndex};

/// Which index entries one [`patch_index_edge`] call moved.
#[derive(Clone, Debug, Default)]
pub struct PatchReport {
    /// Vertices whose label coreness δ changed (by exactly ±1).
    pub coreness_changed: Vec<VertexId>,
    /// Vertices whose butterfly degree χ changed.
    pub chi_changed: Vec<VertexId>,
}

impl PatchReport {
    /// True when the flip moved no index entry at all.
    pub fn is_empty(&self) -> bool {
        self.coreness_changed.is_empty() && self.chi_changed.is_empty()
    }
}

/// The closed neighborhood an edge flip can influence: the endpoints plus
/// every neighbor either endpoint has in the pre- or post-flip snapshot.
/// Search results and index entries outside this set can only move through
/// the cascades, which [`PatchReport`] tracks separately.
pub fn affected_neighborhood(
    before: &LabeledGraph,
    after: &LabeledGraph,
    change: &EdgeChange,
) -> Vec<VertexId> {
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut out = Vec::new();
    for host in [before, after] {
        for w in [change.u, change.v] {
            if seen.insert(w.0) {
                out.push(w);
            }
            for &x in host.neighbors(w) {
                if seen.insert(x.0) {
                    out.push(x);
                }
            }
        }
    }
    out
}

/// Patches `index` (valid for `before`) so it becomes valid for `after`,
/// where the two snapshots differ by exactly `change`. Returns which entries
/// moved.
///
/// `delta_max`/`chi_max` are refreshed from the patched arrays, so the index
/// stays self-consistent after every call.
pub fn patch_index_edge(
    index: &mut BccIndex,
    before: &LabeledGraph,
    after: &LabeledGraph,
    change: &EdgeChange,
) -> PatchReport {
    let mut report = PatchReport::default();
    if before.label(change.u) == before.label(change.v) {
        patch_coreness(index, after, change, &mut report);
        if !report.coreness_changed.is_empty() {
            index.delta_max = index.label_coreness.iter().copied().max().unwrap_or(0);
        }
    } else {
        patch_chi(index, before, after, change, &mut report);
        if !report.chi_changed.is_empty() {
            index.chi_max = index.butterfly_degree.iter().copied().max().unwrap_or(0);
        }
    }
    report
}

/// δ maintenance for a homogeneous flip, within the edge's label group.
fn patch_coreness(
    index: &mut BccIndex,
    after: &LabeledGraph,
    change: &EdgeChange,
    report: &mut PatchReport,
) {
    let (u, v) = (change.u, change.v);
    let label = after.label(u);
    let k = index.coreness(u).min(index.coreness(v));
    match change.op {
        EdgeOp::Remove => {
            if k == 0 {
                return; // neither endpoint was in any positive core
            }
            // The old k-core of the label group, on the post-flip snapshot.
            // Only the endpoints lost degree, so they are the only possible
            // cascade seeds (Algorithm 4).
            let mut alive = BitSet::new(after.vertex_count());
            for w in after.vertices() {
                if after.label(w) == label && index.label_coreness[w.index()] >= k {
                    alive.insert(w.index());
                }
            }
            let mut view = GraphView::from_alive(after, alive);
            let mut thresholds = LabelCoreThresholds::new(after.label_count());
            thresholds.require(label, k);
            let removed = cascade_label_core_from_seeds(&mut view, &thresholds, &[u, v]);
            for w in removed {
                // Every peeled vertex had δ exactly k (deeper cores cannot
                // lose the flipped edge) and drops by exactly 1.
                index.label_coreness[w.index()] -= 1;
                report.coreness_changed.push(w);
            }
        }
        EdgeOp::Insert => {
            // Candidates: core-k vertices reachable from a core-k endpoint
            // through core-k vertices of the label group (the traversal
            // candidate set); only they can rise, to exactly k + 1.
            let mut in_candidates = BitSet::new(after.vertex_count());
            let mut queue = std::collections::VecDeque::new();
            for root in [u, v] {
                if index.coreness(root) == k && in_candidates.insert(root.index()) {
                    queue.push_back(root);
                }
            }
            while let Some(x) = queue.pop_front() {
                for &w in after.neighbors(x) {
                    if after.label(w) == label
                        && index.label_coreness[w.index()] == k
                        && in_candidates.insert(w.index())
                    {
                        queue.push_back(w);
                    }
                }
            }
            // Peel candidates ∪ old (k+1)-core down to the new (k+1)-core.
            let mut alive = in_candidates.clone();
            for w in after.vertices() {
                if after.label(w) == label && index.label_coreness[w.index()] > k {
                    alive.insert(w.index());
                }
            }
            let mut view = GraphView::from_alive(after, alive);
            let mut thresholds = LabelCoreThresholds::new(after.label_count());
            thresholds.require(label, k + 1);
            reduce_to_label_core(&mut view, &thresholds);
            for w in view.alive_vertices() {
                if in_candidates.contains(w.index()) {
                    index.label_coreness[w.index()] = k + 1;
                    report.coreness_changed.push(w);
                }
            }
        }
    }
}

/// χ maintenance for a heterogeneous flip, over the edge's closed
/// neighborhood.
fn patch_chi(
    index: &mut BccIndex,
    before: &LabeledGraph,
    after: &LabeledGraph,
    change: &EdgeChange,
    report: &mut PatchReport,
) {
    let affected = affected_neighborhood(before, after, change);
    if after.label_count() == 2 {
        // Two labels: the aggregate χ *is* the bipartite butterfly degree,
        // so the Algorithm 7 edge delta applies verbatim. It is evaluated on
        // whichever snapshot contains the edge.
        let cross = bcc_butterfly::BipartiteCross::new(
            before.label(change.u),
            before.label(change.v),
        );
        let host = match change.op {
            EdgeOp::Insert => after,
            EdgeOp::Remove => before,
        };
        let host_view = GraphView::new(host);
        for &p in &affected {
            let delta = bcc_butterfly::edge_decrement(&host_view, cross, p, change.u, change.v);
            if delta == 0 {
                continue;
            }
            match change.op {
                EdgeOp::Insert => index.butterfly_degree[p.index()] += delta,
                EdgeOp::Remove => index.butterfly_degree[p.index()] -= delta,
            }
            report.chi_changed.push(p);
        }
    } else {
        // Multi-label aggregate: recompute χ locally — still O(d²) per
        // affected vertex, never a global recount.
        let view = GraphView::new(after);
        for &p in &affected {
            let fresh = hetero_butterfly_degree_of(&view, p);
            if fresh != index.butterfly_degree[p.index()] {
                index.butterfly_degree[p.index()] = fresh;
                report.chi_changed.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{apply_change, GraphBuilder};

    fn assert_index_eq(patched: &BccIndex, rebuilt: &BccIndex, context: &str) {
        assert_eq!(patched.label_coreness, rebuilt.label_coreness, "δ after {context}");
        assert_eq!(patched.butterfly_degree, rebuilt.butterfly_degree, "χ after {context}");
        assert_eq!(patched.delta_max, rebuilt.delta_max, "δ_max after {context}");
        assert_eq!(patched.chi_max, rebuilt.chi_max, "χ_max after {context}");
    }

    /// Two labeled 4-cliques bridged by a 2×2 butterfly.
    fn butterfly_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for grp in [&l, &r] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for &x in &l[..2] {
            for &y in &r[..2] {
                b.add_edge(x, y);
            }
        }
        b.build()
    }

    fn flip(graph: &LabeledGraph, u: u32, v: u32, op: EdgeOp) -> (LabeledGraph, EdgeChange) {
        let change = EdgeChange { u: VertexId(u), v: VertexId(v), op };
        (apply_change(graph, &change), change)
    }

    #[test]
    fn homogeneous_deletion_cascades_coreness() {
        let g = butterfly_graph();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 1, EdgeOp::Remove);
        let report = patch_index_edge(&mut index, &g, &after, &change);
        // The left 4-clique loses an edge: its 3-core collapses to a 2-core.
        assert_eq!(report.coreness_changed.len(), 4);
        assert!(report.chi_changed.is_empty(), "homogeneous flips never move χ");
        assert_index_eq(&index, &BccIndex::build(&after), "remove {0,1}");
    }

    #[test]
    fn homogeneous_insertion_raises_coreness() {
        let g = butterfly_graph();
        let (base, change) = flip(&g, 0, 1, EdgeOp::Remove);
        let mut index = BccIndex::build(&base);
        // Re-insert the edge: the 4-clique's 3-core re-forms.
        let restored = apply_change(&base, &EdgeChange { op: EdgeOp::Insert, ..change });
        let report = patch_index_edge(
            &mut index,
            &base,
            &restored,
            &EdgeChange { op: EdgeOp::Insert, ..change },
        );
        assert_eq!(report.coreness_changed.len(), 4);
        assert_index_eq(&index, &BccIndex::build(&restored), "re-insert {0,1}");
    }

    #[test]
    fn heterogeneous_flip_moves_only_chi() {
        let g = butterfly_graph();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 4, EdgeOp::Remove);
        let report = patch_index_edge(&mut index, &g, &after, &change);
        assert!(report.coreness_changed.is_empty(), "heterogeneous flips never move δ");
        assert!(!report.chi_changed.is_empty());
        assert_index_eq(&index, &BccIndex::build(&after), "remove {0,4}");

        let restored = apply_change(&after, &EdgeChange { op: EdgeOp::Insert, ..change });
        patch_index_edge(&mut index, &after, &restored, &EdgeChange { op: EdgeOp::Insert, ..change });
        assert_index_eq(&index, &BccIndex::build(&restored), "re-insert {0,4}");
    }

    #[test]
    fn isolated_label_pair_insertion() {
        // Two vertices of one label with no homogeneous edges: inserting the
        // first edge lifts both from δ = 0 to δ = 1 (the k = 0 corner).
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c = b.add_vertex("B");
        b.add_edge(a0, c);
        b.add_edge(a1, c);
        let g = b.build();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 1, EdgeOp::Insert);
        let report = patch_index_edge(&mut index, &g, &after, &change);
        assert_eq!(report.coreness_changed.len(), 2);
        assert_index_eq(&index, &BccIndex::build(&after), "first homogeneous edge");
    }

    #[test]
    fn multi_label_chi_patching() {
        // Three labels exercise the aggregate-χ (non-bipartite) path.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..2).map(|_| b.add_vertex("A")).collect();
        let bs: Vec<_> = (0..2).map(|_| b.add_vertex("B")).collect();
        let cs: Vec<_> = (0..2).map(|_| b.add_vertex("C")).collect();
        for &x in &a {
            for &y in bs.iter().chain(&cs) {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        let mut index = BccIndex::build(&g);
        let (after, change) = flip(&g, 0, 2, EdgeOp::Remove);
        patch_index_edge(&mut index, &g, &after, &change);
        assert_index_eq(&index, &BccIndex::build(&after), "3-label remove");
        let (restored, ins) = flip(&after, 0, 2, EdgeOp::Insert);
        patch_index_edge(&mut index, &after, &restored, &ins);
        assert_index_eq(&index, &BccIndex::build(&restored), "3-label insert");
    }
}
