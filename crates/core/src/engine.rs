//! The greedy peeling engine behind Algorithms 1 and 9.
//!
//! One loop serves every search variant:
//!
//! * **Online** — full BFS re-computation and a full butterfly recount per
//!   iteration (Algorithm 1 verbatim, with the bulk-deletion optimization of
//!   Section 6 that all of the paper's methods use).
//! * **Leader-pair (LP)** — Algorithm 5 incremental distances plus the
//!   Algorithm 6/7 leader strategy: only the two leaders' butterfly degrees
//!   are updated per deletion, and a full recount happens only when a leader
//!   dies or sinks below `b`.
//!
//! The loop records, per iteration, the candidate's query distance and the
//! batch of vertices it deleted; the answer is reconstructed by replaying
//! deletions up to the best snapshot (Theorem 3's 2-approximation argument
//! needs exactly the minimum-query-distance intermediate graph).

use bcc_butterfly::{identify_leader, leader_decrement, ButterflyCounts, LeaderConfig};
use bcc_graph::{GraphView, VertexId};

use crate::candidate::Candidate;
use crate::fast_dist::IncrementalDistances;
use crate::model::SearchError;
use crate::stats::SearchStats;

/// Which optimizations of Section 6 the engine applies.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Delete every farthest vertex per iteration instead of one.
    pub bulk: bool,
    /// Maintain query distances with Algorithm 5 instead of full BFS.
    pub fast_dist: bool,
    /// Maintain butterfly degrees through leader pairs (Algorithms 6–7)
    /// instead of recounting each iteration.
    pub leader_pairs: bool,
    /// Leader search radius ρ of Algorithm 6.
    pub leader_rho: u32,
    /// Worker threads for the per-query stages (BFS distance recomputation
    /// and butterfly recounts): `1` is the sequential reference path, `0`
    /// means one worker per core. Any value produces bit-identical results.
    pub query_threads: usize,
}

impl EngineConfig {
    /// Online-BCC: bulk deletion only.
    pub fn online() -> Self {
        EngineConfig {
            bulk: true,
            fast_dist: false,
            leader_pairs: false,
            leader_rho: 3,
            query_threads: 1,
        }
    }

    /// LP-BCC: bulk deletion + fast distances + leader pairs.
    pub fn leader_pair() -> Self {
        EngineConfig {
            bulk: true,
            fast_dist: true,
            leader_pairs: true,
            leader_rho: 3,
            query_threads: 1,
        }
    }

    /// Sets the query-thread knob (builder style).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }
}

/// The leader pair of one label pair, with cached butterfly degrees.
#[derive(Clone, Copy, Debug)]
struct PairLeaders {
    left: VertexId,
    chi_left: u64,
    right: VertexId,
    chi_right: u64,
}

/// Output of the peel loop before it is packaged into a
/// [`crate::BccResult`].
pub struct PeelOutcome {
    /// Sorted community members.
    pub community: Vec<VertexId>,
    /// Query distance of the returned community.
    pub query_distance: u32,
    /// Iterations executed.
    pub iterations: usize,
    /// Certified leader per query label (maximum-butterfly member of each
    /// group within the final community), in query order.
    pub leaders: Vec<VertexId>,
}

/// Runs the greedy peel of Algorithm 1/9 on a prepared candidate.
pub fn run_peel(
    mut candidate: Candidate<'_>,
    pair_counts: Vec<ButterflyCounts>,
    config: EngineConfig,
    stats: &mut SearchStats,
) -> Result<PeelOutcome, SearchError> {
    let graph = candidate.view.graph();
    let queries = candidate.queries.clone();
    let b = candidate.b;

    // Seed the leader pairs from the G0 counts (Algorithm 6).
    let mut leaders: Vec<Option<PairLeaders>> = vec![None; candidate.pairs.len()];
    if config.leader_pairs {
        let start = std::time::Instant::now();
        for (idx, counts) in pair_counts.iter().enumerate() {
            if candidate.pair_alive[idx] {
                leaders[idx] = Some(pick_leaders(&candidate, idx, counts, config.leader_rho));
            }
        }
        stats.time_leader_update += start.elapsed();
    }

    let mut dists = IncrementalDistances::compute_with_threads(
        &candidate.view,
        &queries,
        config.query_threads,
        stats,
    );
    let mut batches: Vec<Vec<VertexId>> = Vec::new();
    let mut snapshots: Vec<u32> = Vec::new();

    loop {
        // Loop guard (Algorithm 1 line 3): all queries alive and mutually
        // connected.
        if !candidate.queries_alive() {
            break;
        }
        if !config.fast_dist && !batches.is_empty() {
            dists = IncrementalDistances::compute_with_threads(
                &candidate.view,
                &queries,
                config.query_threads,
                stats,
            );
        }
        if !dists.queries_connected() {
            break;
        }

        // Snapshot the (valid) candidate's query distance (line 6).
        let start = std::time::Instant::now();
        let (farthest, max_qd) = dists.farthest_vertices(&candidate.view);
        stats.time_query_distance += start.elapsed();
        snapshots.push(max_qd);
        if max_qd == 0 {
            break; // nothing farther than the queries themselves
        }

        // Delete the farthest vertex/vertices (line 7 + bulk deletion).
        let batch: Vec<VertexId> = if config.bulk {
            farthest
        } else {
            vec![farthest[0]]
        };

        // Per-deletion leader updates (Algorithm 7) run in the pre-removal
        // callback; collect timing manually to keep the closure light.
        let pair_cross: Vec<_> = (0..candidate.pairs.len())
            .map(|idx| candidate.cross_of(idx))
            .collect();
        let pair_alive_now = candidate.pair_alive.clone();
        let mut leader_time = std::time::Duration::ZERO;
        let mut leader_updates = 0u64;
        let removed = candidate.remove_batch_with(&batch, |view, v| {
            if !config.leader_pairs {
                return;
            }
            let t = std::time::Instant::now();
            for (idx, leader) in leaders.iter_mut().enumerate() {
                if !pair_alive_now[idx] {
                    continue;
                }
                let Some(pl) = leader.as_mut() else { continue };
                // Algorithm 7 is defined on the pre-removal state: a dead v
                // would make every decrement silently 0 (dead vertices have
                // no live neighbors through GraphRead).
                debug_assert!(view.is_alive(v), "leader updates run before the deletion of {v}");
                if view.is_alive(pl.left) && pl.left != v {
                    pl.chi_left -= leader_decrement(view, pair_cross[idx], pl.left, v);
                    leader_updates += 1;
                }
                if view.is_alive(pl.right) && pl.right != v {
                    pl.chi_right -= leader_decrement(view, pair_cross[idx], pl.right, v);
                    leader_updates += 1;
                }
            }
            leader_time += t.elapsed();
        });
        stats.time_leader_update += leader_time;
        stats.leader_updates += leader_updates;
        stats.vertices_deleted += removed.len() as u64;
        stats.iterations += 1;
        batches.push(removed.clone());

        if config.fast_dist {
            dists.update_after_removal(&candidate.view, &removed, stats);
        }

        // Butterfly-core maintenance (Algorithm 4 line 4).
        #[allow(clippy::needless_range_loop)] // leaders[idx] and candidate.pair_alive[idx] are co-indexed
        for idx in 0..candidate.pairs.len() {
            if !candidate.pair_alive[idx] {
                continue;
            }
            if config.leader_pairs {
                let needs_recount = match leaders[idx] {
                    Some(pl) => {
                        !candidate.view.is_alive(pl.left)
                            || !candidate.view.is_alive(pl.right)
                            || pl.chi_left < b
                            || pl.chi_right < b
                    }
                    None => true,
                };
                if needs_recount {
                    let counts = candidate.recount_pair(idx, stats);
                    leaders[idx] = if candidate.pair_alive[idx] {
                        let t = std::time::Instant::now();
                        let picked = pick_leaders(&candidate, idx, &counts, config.leader_rho);
                        stats.time_leader_update += t.elapsed();
                        Some(picked)
                    } else {
                        None
                    };
                }
            } else {
                candidate.recount_pair(idx, stats);
            }
        }
        if !candidate.cross_group_connected() {
            break;
        }
    }

    if snapshots.is_empty() {
        // find_g0 guarantees a connected first snapshot; defensive only.
        return Err(SearchError::Disconnected);
    }

    // Best snapshot: the *last* index attaining the minimum query distance
    // (same distance, fewer vertices — the most concise community).
    let min_qd = *snapshots.iter().min().expect("non-empty");
    let best = snapshots
        .iter()
        .rposition(|&qd| qd == min_qd)
        .expect("minimum exists");

    // Replay deletions 0..best over the saved G0 alive set.
    let mut alive = candidate.g0_alive.clone();
    for batch in &batches[..best] {
        for v in batch {
            alive.remove(v.index());
        }
    }
    let final_view = GraphView::from_alive(graph, alive);
    let comp = final_view.component_of(queries[0]);
    let community: Vec<VertexId> = comp.iter().map(|i| VertexId(i as u32)).collect();
    debug_assert!(
        queries.iter().all(|q| comp.contains(q.index())),
        "the best snapshot must contain all queries"
    );

    // Certify the leader pair(s) of the returned community (Section 3.3):
    // per label group, its maximum-butterfly member across the group's
    // cross-graphs.
    let community_view = GraphView::from_alive(graph, comp);
    let mut leader_of: Vec<VertexId> = queries.clone();
    let mut best_chi: Vec<u64> = vec![0; candidate.labels.len()];
    for idx in 0..candidate.pairs.len() {
        let (i, j) = candidate.pairs[idx];
        let counts = ButterflyCounts::compute_with_threads(
            &community_view,
            candidate.cross_of(idx),
            config.query_threads,
        );
        for (side, label) in [(i, candidate.labels[i]), (j, candidate.labels[j])] {
            if let Some(v) = counts.side_argmax(&community_view, label) {
                if counts.chi(v) > best_chi[side] {
                    best_chi[side] = counts.chi(v);
                    leader_of[side] = v;
                }
            }
        }
    }

    Ok(PeelOutcome {
        community,
        query_distance: min_qd,
        iterations: batches.len(),
        leaders: leader_of,
    })
}

/// Algorithm 6 for both sides of pair `idx`.
fn pick_leaders(
    candidate: &Candidate<'_>,
    idx: usize,
    counts: &ButterflyCounts,
    rho: u32,
) -> PairLeaders {
    let (i, j) = candidate.pairs[idx];
    let config = LeaderConfig {
        rho,
        b: candidate.b,
    };
    let left = identify_leader(
        &candidate.view,
        candidate.labels[i],
        candidate.queries[i],
        &counts.chi,
        config,
    );
    let right = identify_leader(
        &candidate.view,
        candidate.labels[j],
        candidate.queries[j],
        &counts.chi,
        config,
    );
    PairLeaders {
        left,
        chi_left: counts.chi(left),
        right,
        chi_right: counts.chi(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MbccParams, MbccQuery};
    use bcc_graph::{GraphBuilder, LabeledGraph};

    /// Figure 2-style BCC plus a long tail on the left side that inflates
    /// the query distance and must be peeled away.
    fn tailed_bcc() -> (LabeledGraph, MbccQuery, MbccParams) {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..5).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(l[i], l[j]);
            }
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(r[i], r[j]);
            }
        }
        for &x in &l[..2] {
            for &y in &r[..2] {
                b.add_edge(x, y);
            }
        }
        // Tail: a chain of triangles hanging off l4, each vertex with
        // intra-degree >= 2 so a 2-core would keep them; with k1 = 3 they
        // are peeled immediately, so use a second dense blob instead: a
        // 4-clique attached to l4 by 3 edges (so its members survive k=3).
        let t: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(t[i], t[j]);
            }
        }
        for &x in &t[..3] {
            b.add_edge(l[4], x);
        }
        let g = b.build();
        let query = MbccQuery::new(vec![l[0], r[0]]);
        let params = MbccParams::new(vec![3, 3], 1);
        (g, query, params)
    }

    fn run(
        g: &LabeledGraph,
        query: &MbccQuery,
        params: &MbccParams,
        config: EngineConfig,
    ) -> (PeelOutcome, SearchStats) {
        let mut stats = SearchStats::default();
        let (candidate, counts) = Candidate::find_g0(g, query, params, &mut stats).unwrap();
        let outcome = run_peel(candidate, counts, config, &mut stats).unwrap();
        (outcome, stats)
    }

    #[test]
    fn online_peels_the_tail() {
        let (g, query, params) = tailed_bcc();
        let (outcome, stats) = run(&g, &query, &params, EngineConfig::online());
        // The tail blob is farther from the queries than the core community
        // and must be gone.
        for tail in 9..13u32 {
            assert!(
                !outcome.community.contains(&VertexId(tail)),
                "tail vertex v{tail} should be peeled"
            );
        }
        assert!(outcome.community.contains(&VertexId(0)));
        assert!(outcome.community.contains(&VertexId(5)));
        assert!(stats.butterfly_countings >= 1);
        assert!(outcome.query_distance <= 2);
    }

    #[test]
    fn lp_matches_online_community() {
        let (g, query, params) = tailed_bcc();
        let (online, _) = run(&g, &query, &params, EngineConfig::online());
        let (lp, lp_stats) = run(&g, &query, &params, EngineConfig::leader_pair());
        assert_eq!(online.community, lp.community);
        assert_eq!(online.query_distance, lp.query_distance);
        // The leader strategy should not recount more often than online did.
        assert!(lp_stats.incremental_dist_updates > 0);
    }

    #[test]
    fn single_deletion_mode_also_terminates() {
        let (g, query, params) = tailed_bcc();
        let mut config = EngineConfig::online();
        config.bulk = false;
        let (outcome, _) = run(&g, &query, &params, config);
        assert!(outcome.community.contains(&VertexId(0)));
        assert!(outcome.community.contains(&VertexId(5)));
    }

    /// Pins the Definition 4(4) semantics at the leader-certification call
    /// site below (`counts.side_argmax` in `run_peel`): a label pair whose
    /// cross-graph holds **no** butterflies nominates no leader at all
    /// (`side_argmax` returns `None`, never an arbitrary χ = 0 vertex), so
    /// every certified leader comes from a pair that does have butterflies.
    #[test]
    fn certified_leaders_come_only_from_butterfly_pairs() {
        // Three 4-cliques A, B, C; butterflies A×B ({a0,a1}×{b0,b1}) and
        // B×C ({b2,b3}×{c0,c1}); no A–C cross edge at all, so the (A, C)
        // pair counts zero butterflies on both sides while staying part of
        // a connected (Definition 7) candidate through B.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        let mid: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
        let c: Vec<_> = (0..4).map(|_| b.add_vertex("C")).collect();
        for grp in [&a, &mid, &c] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for &x in &a[..2] {
            for &y in &mid[..2] {
                b.add_edge(x, y);
            }
        }
        for &x in &mid[2..] {
            for &y in &c[..2] {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        let query = MbccQuery::new(vec![a[0], mid[0], c[0]]);
        let params = MbccParams::new(vec![3, 3, 3], 1);
        let (outcome, _) = run(&g, &query, &params, EngineConfig::online());
        assert_eq!(outcome.community.len(), 12, "nothing needs peeling");
        // Side A certifies through the A×B butterflies, side C through
        // B×C; the butterfly-less (A, C) pair contributes nothing.
        assert!(a[..2].contains(&outcome.leaders[0]), "A leader {:?}", outcome.leaders);
        assert!(mid[..2].contains(&outcome.leaders[1]), "B leader {:?}", outcome.leaders);
        assert!(c[..2].contains(&outcome.leaders[2]), "C leader {:?}", outcome.leaders);
    }

    #[test]
    fn peel_is_bit_identical_at_every_thread_count() {
        let (g, query, params) = tailed_bcc();
        for base in [EngineConfig::online(), EngineConfig::leader_pair()] {
            let (reference, _) = run(&g, &query, &params, base);
            for threads in [2usize, 3, 7, 0] {
                let mut stats = SearchStats::default();
                let (candidate, counts) =
                    Candidate::find_g0_threaded(&g, &query, &params, threads, &mut stats).unwrap();
                let outcome =
                    run_peel(candidate, counts, base.with_query_threads(threads), &mut stats)
                        .unwrap();
                assert_eq!(outcome.community, reference.community, "threads={threads}");
                assert_eq!(outcome.query_distance, reference.query_distance, "threads={threads}");
                assert_eq!(outcome.iterations, reference.iterations, "threads={threads}");
                assert_eq!(outcome.leaders, reference.leaders, "threads={threads}");
            }
        }
    }

    #[test]
    fn result_is_valid_bcc() {
        let (g, query, params) = tailed_bcc();
        let (outcome, _) = run(&g, &query, &params, EngineConfig::leader_pair());
        let view = GraphView::from_vertices(&g, outcome.community.iter().copied());
        let bcc_query = crate::model::BccQuery::pair(query.queries[0], query.queries[1]);
        let bcc_params = crate::model::BccParams::new(3, 3, 1);
        assert!(crate::model::is_valid_bcc(&view, &bcc_query, &bcc_params));
    }
}
