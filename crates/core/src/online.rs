//! Public two-label search APIs: Online-BCC, LP-BCC, and L2P-BCC.
//!
//! * [`OnlineBcc`] — Algorithm 1 with the bulk-deletion optimization:
//!   full query-distance recomputation and a full butterfly recount per
//!   iteration. 2-approximates the optimal (smallest-diameter) BCC
//!   (Theorem 3).
//! * [`LpBcc`] — Online-BCC plus the fast query-distance computation
//!   (Algorithm 5) and the leader-pair strategy (Algorithms 6–7).
//! * [`L2pBcc`] — LP-BCC plus index-based local exploration (Algorithm 8):
//!   the search runs inside a small candidate expanded around a
//!   butterfly-core weighted path between the queries. Fast in practice but
//!   without the 2-approximation guarantee.

use bcc_graph::{GraphView, LabeledGraph};
use bcc_obs::Recorder;

use crate::candidate::Candidate;
use crate::engine::{run_peel, EngineConfig};
use crate::index::BccIndex;
use crate::local::{butterfly_core_path, expand_candidate, PathWeights};
use crate::model::{BccParams, BccQuery, BccResult, MbccParams, MbccQuery, SearchError};
use crate::stats::SearchStats;

fn to_multi(query: &BccQuery, params: &BccParams) -> (MbccQuery, MbccParams) {
    (
        MbccQuery::new(query.as_vec()),
        MbccParams::new(vec![params.k1, params.k2], params.b),
    )
}

fn finish(
    outcome: crate::engine::PeelOutcome,
    mut stats: SearchStats,
    started: std::time::Instant,
) -> BccResult {
    stats.time_total = started.elapsed();
    BccResult {
        community: outcome.community,
        query_distance: outcome.query_distance,
        iterations: outcome.iterations,
        leaders: outcome.leaders,
        stats,
    }
}

/// Algorithm 1: the online greedy search (with bulk deletion, as all of the
/// paper's evaluated methods use).
#[derive(Clone, Copy, Debug)]
pub struct OnlineBcc {
    /// Delete all farthest vertices per iteration (`true`, the paper's
    /// setting) or a single one (`false`, the literal Algorithm 1).
    pub bulk: bool,
    /// Worker threads for the per-query stages (`1` = sequential reference,
    /// `0` = all cores). Bit-identical results at any value.
    pub query_threads: usize,
}

impl Default for OnlineBcc {
    fn default() -> Self {
        OnlineBcc {
            bulk: true,
            query_threads: 1,
        }
    }
}

impl OnlineBcc {
    /// Sets the query-thread knob (builder style).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }

    /// Searches for a `(k1, k2, b)`-BCC containing the query pair.
    pub fn search(
        &self,
        graph: &LabeledGraph,
        query: &BccQuery,
        params: &BccParams,
    ) -> Result<BccResult, SearchError> {
        let started = std::time::Instant::now();
        let mut stats = SearchStats::default();
        let (mquery, mparams) = to_multi(query, params);
        let (candidate, counts) =
            Candidate::find_g0_threaded(graph, &mquery, &mparams, self.query_threads, &mut stats)?;
        let mut config = EngineConfig::online().with_query_threads(self.query_threads);
        config.bulk = self.bulk;
        let outcome = run_peel(candidate, counts, config, &mut stats)?;
        Ok(finish(outcome, stats, started))
    }

    /// [`OnlineBcc::search`] with the per-phase timings replayed into
    /// `recorder` (out-of-band: the returned result is identical).
    pub fn search_traced(
        &self,
        graph: &LabeledGraph,
        query: &BccQuery,
        params: &BccParams,
        recorder: &impl Recorder,
    ) -> Result<BccResult, SearchError> {
        let result = self.search(graph, query, params);
        if let Ok(r) = &result {
            r.stats.record_phases(recorder);
        }
        result
    }
}

/// LP-BCC: Online-BCC accelerated with Algorithm 5 (fast query distances)
/// and Algorithms 6–7 (leader-pair butterfly maintenance).
#[derive(Clone, Copy, Debug)]
pub struct LpBcc {
    /// Bulk deletion (paper default: on).
    pub bulk: bool,
    /// Leader search radius ρ of Algorithm 6.
    pub rho: u32,
    /// Worker threads for the per-query stages (`1` = sequential reference,
    /// `0` = all cores). Bit-identical results at any value.
    pub query_threads: usize,
}

impl Default for LpBcc {
    fn default() -> Self {
        LpBcc {
            bulk: true,
            rho: 3,
            query_threads: 1,
        }
    }
}

impl LpBcc {
    /// Sets the query-thread knob (builder style).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }

    /// Searches for a `(k1, k2, b)`-BCC containing the query pair.
    pub fn search(
        &self,
        graph: &LabeledGraph,
        query: &BccQuery,
        params: &BccParams,
    ) -> Result<BccResult, SearchError> {
        let started = std::time::Instant::now();
        let mut stats = SearchStats::default();
        let (mquery, mparams) = to_multi(query, params);
        let (candidate, counts) =
            Candidate::find_g0_threaded(graph, &mquery, &mparams, self.query_threads, &mut stats)?;
        let mut config = EngineConfig::leader_pair().with_query_threads(self.query_threads);
        config.bulk = self.bulk;
        config.leader_rho = self.rho;
        let outcome = run_peel(candidate, counts, config, &mut stats)?;
        Ok(finish(outcome, stats, started))
    }

    /// [`LpBcc::search`] with the per-phase timings replayed into
    /// `recorder` (out-of-band: the returned result is identical).
    pub fn search_traced(
        &self,
        graph: &LabeledGraph,
        query: &BccQuery,
        params: &BccParams,
        recorder: &impl Recorder,
    ) -> Result<BccResult, SearchError> {
        let result = self.search(graph, query, params);
        if let Ok(r) = &result {
            r.stats.record_phases(recorder);
        }
        result
    }
}

/// L2P-BCC: leader-pair local search (Algorithm 8) over the offline
/// [`BccIndex`].
#[derive(Clone, Copy, Debug)]
pub struct L2pBcc {
    /// Candidate size threshold η of Algorithm 8 line 3.
    pub eta: usize,
    /// Butterfly-core path weights (Definition 6); the paper uses 0.5/0.5.
    pub weights: PathWeights,
    /// Leader search radius ρ.
    pub rho: u32,
    /// Worker threads for the per-query stages (`1` = sequential reference,
    /// `0` = all cores). Bit-identical results at any value.
    pub query_threads: usize,
}

impl Default for L2pBcc {
    fn default() -> Self {
        L2pBcc {
            eta: 2048,
            weights: PathWeights::default(),
            rho: 3,
            query_threads: 1,
        }
    }
}

impl L2pBcc {
    /// Sets the query-thread knob (builder style).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }

    /// Searches for a `(k1, k2, b)`-BCC containing the query pair, using
    /// `index` (built once with [`BccIndex::build`]) for the path weight and
    /// the expansion floors.
    pub fn search(
        &self,
        graph: &LabeledGraph,
        index: &BccIndex,
        query: &BccQuery,
        params: &BccParams,
    ) -> Result<BccResult, SearchError> {
        let started = std::time::Instant::now();
        let mut stats = SearchStats::default();
        let (mquery, mparams) = to_multi(query, params);

        // Algorithm 8 line 1: butterfly-core weighted path between queries.
        let full_view = GraphView::new(graph);
        let (ll, lr) = (graph.label(query.ql), graph.label(query.qr));
        if ll == lr {
            return Err(SearchError::DuplicateLabels);
        }
        let path = butterfly_core_path(
            &full_view,
            index,
            self.weights,
            query.ql,
            query.qr,
            &[ll, lr],
        )
        .ok_or(SearchError::Disconnected)?;

        // Line 2: per-label coreness floors along the path.
        let kl = path
            .iter()
            .filter(|&&v| graph.label(v) == ll)
            .map(|&v| index.coreness(v))
            .min()
            .unwrap_or(0);
        let kr = path
            .iter()
            .filter(|&&v| graph.label(v) == lr)
            .map(|&v| index.coreness(v))
            .min()
            .unwrap_or(0);
        // The candidate can never certify more than the requested cores, so
        // raise the floors to the requested k's when those are higher.
        let floors = vec![(ll, kl.max(mparams.ks[0])), (lr, kr.max(mparams.ks[1]))];

        // Line 3: expand into a candidate of ≈ η vertices.
        let selected = expand_candidate(&full_view, index, &path, &floors, self.eta);
        let local_view = GraphView::from_vertices(graph, selected);

        // Lines 4–5: extract the BCC inside the candidate and bulk-peel it
        // with the LP strategies.
        let (candidate, counts) = Candidate::find_g0_in_threaded(
            local_view,
            &mquery,
            &mparams,
            self.query_threads,
            &mut stats,
        )?;
        let mut config = EngineConfig::leader_pair().with_query_threads(self.query_threads);
        config.leader_rho = self.rho;
        let outcome = run_peel(candidate, counts, config, &mut stats)?;
        Ok(finish(outcome, stats, started))
    }

    /// [`L2pBcc::search`] with the per-phase timings replayed into
    /// `recorder` (out-of-band: the returned result is identical).
    pub fn search_traced(
        &self,
        graph: &LabeledGraph,
        index: &BccIndex,
        query: &BccQuery,
        params: &BccParams,
        recorder: &impl Recorder,
    ) -> Result<BccResult, SearchError> {
        let result = self.search(graph, index, query, params);
        if let Ok(r) = &result {
            r.stats.record_phases(recorder);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::is_valid_bcc;
    use bcc_graph::{GraphBuilder, GraphView, VertexId};

    /// A Figure 1-like professional network: an SE 4-core (6 vertices), a UI
    /// 3-core (5 vertices), one butterfly between them, an SE appendage that
    /// inflates distances, and a PM vertex that must never appear.
    fn figure1_like() -> (bcc_graph::LabeledGraph, BccQuery) {
        let mut b = GraphBuilder::new();
        let se: Vec<_> = (0..6).map(|i| b.add_named_vertex(&format!("se{i}"), "SE")).collect();
        let ui: Vec<_> = (0..5).map(|i| b.add_named_vertex(&format!("ui{i}"), "UI")).collect();
        // SE side: 6 vertices, each pair connected except one missing edge →
        // still a 4-core.
        for i in 0..6 {
            for j in (i + 1)..6 {
                if !(i == 4 && j == 5) {
                    b.add_edge(se[i], se[j]);
                }
            }
        }
        // UI side: 5-clique minus nothing → 4-core; keep it a 3-core by
        // removing two edges.
        for i in 0..5 {
            for j in (i + 1)..5 {
                if !((i == 0 && j == 4) || (i == 1 && j == 3)) {
                    b.add_edge(ui[i], ui[j]);
                }
            }
        }
        // Butterfly: se0, se1 × ui0, ui1.
        for &s in &se[..2] {
            for &u in &ui[..2] {
                b.add_edge(s, u);
            }
        }
        // PM vertex touching both sides.
        let pm = b.add_named_vertex("pm0", "PM");
        b.add_edge(pm, se[0]);
        b.add_edge(pm, ui[0]);
        // Distant SE blob hanging off se5: a 5-clique connected by 4 edges.
        let blob: Vec<_> = (0..5).map(|i| b.add_named_vertex(&format!("blob{i}"), "SE")).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(blob[i], blob[j]);
            }
        }
        for &x in &blob[..4] {
            b.add_edge(se[5], x);
        }
        let g = b.build();
        (g, BccQuery::pair(se[0], ui[0]))
    }

    #[test]
    fn online_finds_valid_community() {
        let (g, q) = figure1_like();
        let params = BccParams::new(4, 3, 1);
        let result = OnlineBcc::default().search(&g, &q, &params).unwrap();
        let view = GraphView::from_vertices(&g, result.community.iter().copied());
        assert!(is_valid_bcc(&view, &q, &params), "community: {:?}", result.community);
        assert!(result.contains(&q.ql) && result.contains(&q.qr));
        // The PM vertex is excluded by the label restriction.
        let pm = g.vertex_by_name("pm0").unwrap();
        assert!(!result.contains(&pm));
    }

    #[test]
    fn all_three_methods_agree_on_validity() {
        let (g, q) = figure1_like();
        let params = BccParams::new(4, 3, 1);
        let online = OnlineBcc::default().search(&g, &q, &params).unwrap();
        let lp = LpBcc::default().search(&g, &q, &params).unwrap();
        let index = BccIndex::build(&g);
        let l2p = L2pBcc::default().search(&g, &index, &q, &params).unwrap();
        for (name, result) in [("online", &online), ("lp", &lp), ("l2p", &l2p)] {
            let view = GraphView::from_vertices(&g, result.community.iter().copied());
            assert!(is_valid_bcc(&view, &q, &params), "{name}: {:?}", result.community);
        }
        // Online and LP run the identical peel order, so identical answers.
        assert_eq!(online.community, lp.community);
        assert_eq!(online.query_distance, lp.query_distance);
    }

    #[test]
    fn blob_is_peeled_from_answer() {
        let (g, q) = figure1_like();
        let params = BccParams::new(4, 3, 1);
        let result = LpBcc::default().search(&g, &q, &params).unwrap();
        for i in 0..5 {
            let blob = g.vertex_by_name(&format!("blob{i}")).unwrap();
            assert!(!result.contains(&blob), "blob{i} should be peeled");
        }
    }

    #[test]
    fn errors_surface() {
        let (g, q) = figure1_like();
        // Same-label queries.
        let err = OnlineBcc::default()
            .search(&g, &BccQuery::pair(q.ql, q.ql), &BccParams::new(1, 1, 1))
            .unwrap_err();
        assert_eq!(err, SearchError::DuplicateLabels);
        // Out of range.
        let err = OnlineBcc::default()
            .search(&g, &BccQuery::pair(q.ql, VertexId(10_000)), &BccParams::new(1, 1, 1))
            .unwrap_err();
        assert!(matches!(err, SearchError::QueryOutOfRange(_)));
        // Impossible butterfly threshold.
        let err = OnlineBcc::default()
            .search(&g, &q, &BccParams::new(4, 3, 100))
            .unwrap_err();
        assert_eq!(err, SearchError::NoCandidate);
    }

    #[test]
    fn lp_stats_record_fast_strategies() {
        let (g, q) = figure1_like();
        let params = BccParams::new(4, 3, 1);
        let lp = LpBcc::default().search(&g, &q, &params).unwrap();
        assert!(lp.stats.incremental_dist_updates > 0 || lp.iterations == 0);
        let online = OnlineBcc::default().search(&g, &q, &params).unwrap();
        assert!(
            lp.stats.butterfly_countings <= online.stats.butterfly_countings,
            "LP must not count butterflies more often than Online"
        );
    }

    #[test]
    fn traced_search_is_identical_and_populates_the_trace() {
        let (g, q) = figure1_like();
        let params = BccParams::new(4, 3, 1);
        let trace = bcc_obs::QueryTrace::new();
        let plain = LpBcc::default().search(&g, &q, &params).unwrap();
        let traced = LpBcc::default().search_traced(&g, &q, &params, &trace).unwrap();
        assert_eq!(plain.community, traced.community);
        assert_eq!(plain.query_distance, traced.query_distance);
        assert_eq!(plain.leaders, traced.leaders);
        // The trace holds exactly what the stats recorded (µs truncation).
        use bcc_obs::Phase;
        for (phase, time) in [
            (Phase::QueryDistance, traced.stats.time_query_distance),
            (Phase::CoreDecomp, traced.stats.time_core_decomp),
            (Phase::ButterflyCounting, traced.stats.time_butterfly_counting),
            (Phase::LeaderPairing, traced.stats.time_leader_update),
        ] {
            assert_eq!(trace.get(phase).as_micros(), time.as_micros());
        }
        // Core decomposition ran (the candidate is peeled to label cores).
        assert!(traced.stats.time_core_decomp > std::time::Duration::ZERO);
        // The no-op recorder path returns the same community too.
        let noop = OnlineBcc::default()
            .search_traced(&g, &q, &params, &bcc_obs::NoopRecorder)
            .unwrap();
        assert_eq!(noop.community, OnlineBcc::default().search(&g, &q, &params).unwrap().community);
    }

    #[test]
    fn query_threads_do_not_change_any_result() {
        let (g, q) = figure1_like();
        let params = BccParams::new(4, 3, 1);
        let index = BccIndex::build(&g);
        let online_ref = OnlineBcc::default().search(&g, &q, &params).unwrap();
        let lp_ref = LpBcc::default().search(&g, &q, &params).unwrap();
        let l2p_ref = L2pBcc::default().search(&g, &index, &q, &params).unwrap();
        for threads in [2usize, 3, 7, 0] {
            let online = OnlineBcc::default()
                .with_query_threads(threads)
                .search(&g, &q, &params)
                .unwrap();
            assert_eq!(online.community, online_ref.community, "threads={threads}");
            assert_eq!(online.query_distance, online_ref.query_distance);
            assert_eq!(online.leaders, online_ref.leaders, "threads={threads}");
            let lp = LpBcc::default()
                .with_query_threads(threads)
                .search(&g, &q, &params)
                .unwrap();
            assert_eq!(lp.community, lp_ref.community, "threads={threads}");
            assert_eq!(lp.leaders, lp_ref.leaders, "threads={threads}");
            let l2p = L2pBcc::default()
                .with_query_threads(threads)
                .search(&g, &index, &q, &params)
                .unwrap();
            assert_eq!(l2p.community, l2p_ref.community, "threads={threads}");
            assert_eq!(l2p.leaders, l2p_ref.leaders, "threads={threads}");
        }
    }

    #[test]
    fn auto_params_run() {
        let (g, q) = figure1_like();
        let params = BccParams::auto(&g, &q);
        assert!(params.k1 >= 4, "se0 sits in a 4-core");
        let result = OnlineBcc::default().search(&g, &q, &params);
        assert!(result.is_ok(), "{result:?}");
    }
}
