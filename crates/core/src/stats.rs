//! Instrumentation counters and phase timers.
//!
//! Table 4 of the paper compares Online-BCC and LP-BCC by the time spent on
//! query-distance calculation, the time spent updating leader pairs, and the
//! *number of invocations* of the butterfly-counting procedure (Algorithm 3).
//! Every search algorithm in this crate threads a [`SearchStats`] through its
//! phases so the harness can regenerate that table.

use std::time::Duration;

use bcc_obs::{Phase, Recorder};

/// Counters and timers collected during one (or many, summed) searches.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Invocations of the full butterfly-counting procedure (Algorithm 3)
    /// — the `#butterfly counting` row of Table 4.
    pub butterfly_countings: u64,
    /// Invocations of the per-leader O(d²) update (Algorithm 7).
    pub leader_updates: u64,
    /// Full single-source BFS traversals performed for query distances.
    pub full_bfs_runs: u64,
    /// Partial-update rounds of the fast query-distance computation
    /// (Algorithm 5).
    pub incremental_dist_updates: u64,
    /// Vertices deleted across all peeling iterations.
    pub vertices_deleted: u64,
    /// Peeling iterations executed (the `t` of Theorem 4).
    pub iterations: u64,
    /// Wall time spent computing/updating query distances.
    pub time_query_distance: Duration,
    /// Sub-span of `time_query_distance` on the parallel online path:
    /// frontier expansion (neighbor relaxation) of the level-synchronous
    /// BFS. Zero on the sequential reference path.
    pub time_dist_expand: Duration,
    /// Sub-span of `time_query_distance` on the parallel online path:
    /// merging per-worker discovery buffers into the next frontier.
    pub time_dist_merge: Duration,
    /// Wall time spent in label-core decomposition / reduction to the
    /// per-label cores (Algorithm 2 lines 1–3).
    pub time_core_decomp: Duration,
    /// Wall time spent in full butterfly counting.
    pub time_butterfly_counting: Duration,
    /// Wall time spent updating leader butterfly degrees (Algorithm 7) and
    /// re-identifying leaders (Algorithm 6).
    pub time_leader_update: Duration,
    /// End-to-end wall time of the search.
    pub time_total: Duration,
}

impl SearchStats {
    /// Accumulates `other` into `self` (for averaging over query workloads).
    pub fn merge(&mut self, other: &SearchStats) {
        self.butterfly_countings += other.butterfly_countings;
        self.leader_updates += other.leader_updates;
        self.full_bfs_runs += other.full_bfs_runs;
        self.incremental_dist_updates += other.incremental_dist_updates;
        self.vertices_deleted += other.vertices_deleted;
        self.iterations += other.iterations;
        self.time_query_distance += other.time_query_distance;
        self.time_dist_expand += other.time_dist_expand;
        self.time_dist_merge += other.time_dist_merge;
        self.time_core_decomp += other.time_core_decomp;
        self.time_butterfly_counting += other.time_butterfly_counting;
        self.time_leader_update += other.time_leader_update;
        self.time_total += other.time_total;
    }

    /// Replays the collected phase timings into a [`Recorder`] — the bridge
    /// between this crate's per-search accounting and the observability
    /// layer (`bcc-obs` histograms, the service metrics registry, the
    /// Table 4 figure binary). Recording through [`bcc_obs::NoopRecorder`]
    /// compiles to nothing measurable.
    pub fn record_phases(&self, recorder: &impl Recorder) {
        recorder.record_phase(Phase::QueryDistance, self.time_query_distance);
        recorder.record_phase(Phase::CoreDecomp, self.time_core_decomp);
        recorder.record_phase(Phase::ButterflyCounting, self.time_butterfly_counting);
        recorder.record_phase(Phase::LeaderPairing, self.time_leader_update);
        // The distance sub-phases exist only where the parallel BFS ran;
        // recording them unconditionally would flood the histograms with
        // zero samples from every sequential query.
        if !self.time_dist_expand.is_zero() || !self.time_dist_merge.is_zero() {
            recorder.record_phase(Phase::QueryDistExpand, self.time_dist_expand);
            recorder.record_phase(Phase::QueryDistMerge, self.time_dist_merge);
        }
    }
}

/// Times a closure into the given duration slot.
pub(crate) fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    *slot += start.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = SearchStats {
            butterfly_countings: 2,
            iterations: 5,
            time_total: Duration::from_millis(10),
            ..Default::default()
        };
        let b = SearchStats {
            butterfly_countings: 3,
            iterations: 1,
            time_total: Duration::from_millis(5),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.butterfly_countings, 5);
        assert_eq!(a.iterations, 6);
        assert_eq!(a.time_total, Duration::from_millis(15));
    }

    #[test]
    fn record_phases_maps_fields_to_phases() {
        let stats = SearchStats {
            time_query_distance: Duration::from_micros(10),
            time_core_decomp: Duration::from_micros(20),
            time_butterfly_counting: Duration::from_micros(30),
            time_leader_update: Duration::from_micros(40),
            time_total: Duration::from_micros(999), // not a phase: derived
            ..Default::default()
        };
        let trace = bcc_obs::QueryTrace::new();
        stats.record_phases(&trace);
        assert_eq!(trace.get(Phase::QueryDistance), Duration::from_micros(10));
        assert_eq!(trace.get(Phase::CoreDecomp), Duration::from_micros(20));
        assert_eq!(trace.get(Phase::ButterflyCounting), Duration::from_micros(30));
        assert_eq!(trace.get(Phase::LeaderPairing), Duration::from_micros(40));
        assert_eq!(trace.total(), Duration::from_micros(100));
        // The no-op recorder accepts the same replay.
        stats.record_phases(&bcc_obs::NoopRecorder);
    }

    #[test]
    fn timed_accumulates() {
        let mut slot = Duration::ZERO;
        let out = timed(&mut slot, || 42);
        assert_eq!(out, 42);
        let first = slot;
        timed(&mut slot, || ());
        assert!(slot >= first);
    }
}
