//! The evolving BCC candidate: Algorithm 2 (finding `G_0`) generalized to
//! `m` labels, plus the maintenance hooks of Algorithm 4.
//!
//! A candidate holds a [`GraphView`] restricted to the query labels, the
//! per-label core thresholds, and the liveness of every label *pair*'s
//! cross-group interaction. Because butterfly degrees only ever decrease
//! under deletion, a pair that loses its interaction never regains it, so
//! pair liveness is monotone — which is what makes the leader-pair strategy
//! sound.

use bcc_butterfly::{BipartiteCross, ButterflyCounts};
use bcc_cohesion::LabelCoreThresholds;
use bcc_graph::{BitSet, GraphView, Label, LabeledGraph, UnionFind, VertexId};

use crate::model::{MbccParams, MbccQuery, SearchError};
use crate::stats::{timed, SearchStats};

/// The maximal-candidate state shared by every search variant.
#[derive(Clone, Debug)]
pub struct Candidate<'g> {
    /// The live candidate subgraph.
    pub view: GraphView<'g>,
    /// Per-label core thresholds (labels outside the query set excluded).
    pub thresholds: LabelCoreThresholds,
    /// Query vertices, one per label, aligned with `labels`.
    pub queries: Vec<VertexId>,
    /// The m query labels, aligned with `queries`.
    pub labels: Vec<Label>,
    /// Butterfly threshold b.
    pub b: u64,
    /// All unordered label-pair indices `(i, j)` with `i < j`.
    pub pairs: Vec<(usize, usize)>,
    /// Liveness of each pair's cross-group interaction (aligned with
    /// `pairs`). Monotone: once false, stays false.
    pub pair_alive: Vec<bool>,
    /// The alive set of `G_0`, kept for snapshot replay.
    pub g0_alive: BitSet,
    /// Worker threads for butterfly recounts (1 = sequential reference).
    pub query_threads: usize,
}

/// Resolves a thread-count knob: `0` means one worker per available core,
/// anything else is taken literally (matching `BccIndex::build_with_threads`).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

impl<'g> Candidate<'g> {
    /// Algorithm 2 (generalized): builds the maximal connected candidate
    /// containing all queries — label cores, per-label query components,
    /// butterfly/leader condition per pair, cross-group connectivity, and a
    /// final restriction to the queries' connected component.
    ///
    /// Returns the candidate together with the per-pair butterfly counts of
    /// `G_0` (LP variants seed their leaders from these).
    pub fn find_g0(
        graph: &'g LabeledGraph,
        query: &MbccQuery,
        params: &MbccParams,
        stats: &mut SearchStats,
    ) -> Result<(Self, Vec<ButterflyCounts>), SearchError> {
        Self::find_g0_in(GraphView::new(graph), query, params, stats)
    }

    /// [`Candidate::find_g0`] with a query-thread knob: `threads > 1` (or 0,
    /// meaning all cores) runs the label-core reduction and per-pair
    /// butterfly counting on worker threads. Results are bit-identical to
    /// the sequential reference at every thread count.
    pub fn find_g0_threaded(
        graph: &'g LabeledGraph,
        query: &MbccQuery,
        params: &MbccParams,
        threads: usize,
        stats: &mut SearchStats,
    ) -> Result<(Self, Vec<ButterflyCounts>), SearchError> {
        Self::find_g0_in_threaded(GraphView::new(graph), query, params, threads, stats)
    }

    /// [`Candidate::find_g0`] over a pre-restricted view — the entry point
    /// for the local exploration of Algorithm 8, which hands in a small
    /// candidate neighborhood instead of the whole graph.
    pub fn find_g0_in(
        view: GraphView<'g>,
        query: &MbccQuery,
        params: &MbccParams,
        stats: &mut SearchStats,
    ) -> Result<(Self, Vec<ButterflyCounts>), SearchError> {
        Self::find_g0_in_threaded(view, query, params, 1, stats)
    }

    /// [`Candidate::find_g0_in`] with the query-thread knob of
    /// [`Candidate::find_g0_threaded`]. The candidate remembers the resolved
    /// thread count and reuses it for every later [`Candidate::recount_pair`].
    pub fn find_g0_in_threaded(
        mut view: GraphView<'g>,
        query: &MbccQuery,
        params: &MbccParams,
        threads: usize,
        stats: &mut SearchStats,
    ) -> Result<(Self, Vec<ButterflyCounts>), SearchError> {
        let threads = resolve_threads(threads);
        let graph = view.graph();
        let m = query.queries.len();
        if m < 2 {
            return Err(SearchError::TooFewQueries);
        }
        assert_eq!(params.ks.len(), m, "one k per query vertex required");
        let n = graph.vertex_count();
        for &q in &query.queries {
            if q.index() >= n {
                return Err(SearchError::QueryOutOfRange(q));
            }
        }
        let labels: Vec<Label> = query.queries.iter().map(|&q| graph.label(q)).collect();
        for i in 0..m {
            for j in (i + 1)..m {
                if labels[i] == labels[j] {
                    return Err(SearchError::DuplicateLabels);
                }
            }
        }

        // Lines 1–3: restrict to the query labels and peel to the per-label
        // cores.
        let mut thresholds = LabelCoreThresholds::new(graph.label_count());
        for (label, &k) in labels.iter().zip(&params.ks) {
            thresholds.require(*label, k);
        }
        if threads > 1 {
            // The parallel path computes the label coreness once (level-
            // synchronous peel) and filters on it — same surviving set, same
            // view counters, only the internal removal order differs.
            timed(&mut stats.time_core_decomp, || {
                bcc_cohesion::reduce_to_label_core_parallel(&mut view, &thresholds, threads)
            });
        } else {
            timed(&mut stats.time_core_decomp, || {
                bcc_cohesion::reduce_to_label_core(&mut view, &thresholds)
            });
        }
        for &q in &query.queries {
            if !view.is_alive(q) {
                return Err(SearchError::NoCandidate);
            }
        }

        // Per-label connected components: keep only each query's component
        // *within its label-induced subgraph* (Algorithm 2 lines 2–3).
        for (idx, &q) in query.queries.iter().enumerate() {
            let keep = same_label_component(&view, q);
            let to_remove: Vec<VertexId> = view
                .alive_vertices()
                .filter(|&v| graph.label(v) == labels[idx] && !keep.contains(v.index()))
                .collect();
            for v in to_remove {
                view.remove_vertex(v);
            }
            // Removing whole label components cannot break intra-label
            // cores of the surviving vertices, so no cascade is needed.
        }

        // Restrict to the connected component containing the queries (the
        // candidate must be a connected subgraph containing Q).
        let comp = view.component_of(query.queries[0]);
        for &q in &query.queries[1..] {
            if !comp.contains(q.index()) {
                return Err(SearchError::Disconnected);
            }
        }
        view.restrict_to(&comp);
        // Dropping other components may strand label-core violations only in
        // the removed part; inside the kept component degrees are unchanged.

        // Lines 4–9: butterfly counting per label pair + leader condition.
        let mut pairs = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                pairs.push((i, j));
            }
        }
        let mut pair_counts = Vec::with_capacity(pairs.len());
        let mut pair_alive = Vec::with_capacity(pairs.len());
        for &(i, j) in &pairs {
            let cross = BipartiteCross::new(labels[i], labels[j]);
            let counts = timed(&mut stats.time_butterfly_counting, || {
                ButterflyCounts::compute_with_threads(&view, cross, threads)
            });
            stats.butterfly_countings += 1;
            pair_alive.push(counts.satisfies_leader_condition(params.b));
            pair_counts.push(counts);
        }

        let g0_alive = view.alive_set().clone();
        let candidate = Candidate {
            view,
            thresholds,
            queries: query.queries.clone(),
            labels,
            b: params.b,
            pairs,
            pair_alive,
            g0_alive,
            query_threads: threads,
        };
        if !candidate.cross_group_connected() {
            return Err(SearchError::NoCandidate);
        }
        Ok((candidate, pair_counts))
    }

    /// Definition 7 check: the label groups, linked by pairs with live
    /// cross-group interaction, must form one connected block (checked with
    /// union-find, as Section 7 suggests). For m = 2 this is exactly the
    /// leader condition of Definition 4.
    pub fn cross_group_connected(&self) -> bool {
        let m = self.labels.len();
        let mut uf = UnionFind::new(m);
        for (idx, &(i, j)) in self.pairs.iter().enumerate() {
            if self.pair_alive[idx] {
                uf.union(i as u32, j as u32);
            }
        }
        uf.component_count() == 1
    }

    /// The [`BipartiteCross`] descriptor of pair `idx`.
    pub fn cross_of(&self, idx: usize) -> BipartiteCross {
        let (i, j) = self.pairs[idx];
        BipartiteCross::new(self.labels[i], self.labels[j])
    }

    /// Returns `true` if every query vertex is still alive.
    pub fn queries_alive(&self) -> bool {
        self.queries.iter().all(|&q| self.view.is_alive(q))
    }

    /// Removes `batch`, then cascades the label-core conditions
    /// (Algorithm 4 lines 1–3). `before_remove` fires for every vertex —
    /// batch or collateral — immediately *before* it is deleted, while the
    /// view still contains it (the precondition of Algorithm 7).
    ///
    /// Returns all removed vertices in deletion order.
    pub fn remove_batch_with(
        &mut self,
        batch: &[VertexId],
        mut before_remove: impl FnMut(&GraphView<'g>, VertexId),
    ) -> Vec<VertexId> {
        let mut removed = Vec::with_capacity(batch.len());
        let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
        for &v in batch {
            if !self.view.is_alive(v) {
                continue;
            }
            before_remove(&self.view, v);
            let neighbors: Vec<VertexId> = self.view.same_label_neighbors(v).collect();
            self.view.remove_vertex(v);
            removed.push(v);
            for u in neighbors {
                if self.violates(u) {
                    queue.push_back(u);
                }
            }
        }
        while let Some(v) = queue.pop_front() {
            if !self.view.is_alive(v) || !self.violates(v) {
                continue;
            }
            before_remove(&self.view, v);
            let neighbors: Vec<VertexId> = self.view.same_label_neighbors(v).collect();
            self.view.remove_vertex(v);
            removed.push(v);
            for u in neighbors {
                if self.violates(u) {
                    queue.push_back(u);
                }
            }
        }
        removed
    }

    #[inline]
    fn violates(&self, v: VertexId) -> bool {
        match self.thresholds.get(self.view.graph().label(v)) {
            Some(k) => (self.view.intra_degree(v) as u32) < k,
            None => true,
        }
    }

    /// Recounts butterflies for pair `idx` (a full Algorithm 3 run) and
    /// refreshes its liveness. Returns the fresh counts.
    pub fn recount_pair(&mut self, idx: usize, stats: &mut SearchStats) -> ButterflyCounts {
        let cross = self.cross_of(idx);
        let counts = timed(&mut stats.time_butterfly_counting, || {
            ButterflyCounts::compute_with_threads(&self.view, cross, self.query_threads)
        });
        stats.butterfly_countings += 1;
        self.pair_alive[idx] = self.pair_alive[idx] && counts.satisfies_leader_condition(self.b);
        counts
    }
}

/// The connected component of `q` inside its own label group (traversing
/// only same-label alive edges).
fn same_label_component(view: &GraphView<'_>, q: VertexId) -> BitSet {
    let mut comp = BitSet::new(view.graph().vertex_count());
    if !view.is_alive(q) {
        return comp;
    }
    comp.insert(q.index());
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(q);
    while let Some(v) = queue.pop_front() {
        for u in view.same_label_neighbors(v) {
            if comp.insert(u.index()) {
                queue.push_back(u);
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// Figure 2-style graph: left 4-clique (L), right 4-clique (R), a
    /// butterfly across, plus a stray Z-labeled vertex and a far L-clique
    /// not connected to the query component.
    fn fixture() -> (LabeledGraph, MbccQuery, MbccParams) {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(l[i], l[j]);
                b.add_edge(r[i], r[j]);
            }
        }
        for &x in &l[..2] {
            for &y in &r[..2] {
                b.add_edge(x, y);
            }
        }
        let z = b.add_vertex("Z");
        b.add_edge(z, l[0]);
        // A second, disconnected L-clique.
        let far: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(far[i], far[j]);
            }
        }
        let g = b.build();
        let query = MbccQuery::new(vec![l[0], r[0]]);
        let params = MbccParams::new(vec![3, 3], 1);
        (g, query, params)
    }

    #[test]
    fn find_g0_restricts_to_query_component_and_labels() {
        let (g, query, params) = fixture();
        let mut stats = SearchStats::default();
        let (candidate, counts) = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap();
        assert_eq!(candidate.view.alive_count(), 8, "two 4-cliques only");
        assert!(!candidate.view.is_alive(VertexId(8)), "Z vertex excluded");
        assert!(!candidate.view.is_alive(VertexId(9)), "far clique excluded");
        assert_eq!(counts.len(), 1);
        assert!(counts[0].satisfies_leader_condition(1));
        assert!(candidate.cross_group_connected());
        assert_eq!(stats.butterfly_countings, 1);
    }

    #[test]
    fn find_g0_rejects_same_label_queries() {
        let (g, _, params) = fixture();
        let query = MbccQuery::new(vec![VertexId(0), VertexId(1)]);
        let mut stats = SearchStats::default();
        let err = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap_err();
        assert_eq!(err, SearchError::DuplicateLabels);
    }

    #[test]
    fn find_g0_rejects_oversized_k() {
        let (g, query, _) = fixture();
        let params = MbccParams::new(vec![4, 3], 1);
        let mut stats = SearchStats::default();
        let err = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap_err();
        assert_eq!(err, SearchError::NoCandidate, "no 4-core on the left");
    }

    #[test]
    fn find_g0_rejects_oversized_b() {
        let (g, query, _) = fixture();
        let params = MbccParams::new(vec![3, 3], 2);
        let mut stats = SearchStats::default();
        let err = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap_err();
        assert_eq!(err, SearchError::NoCandidate, "only one butterfly exists");
    }

    #[test]
    fn find_g0_rejects_disconnected_queries() {
        let (g, _, params) = fixture();
        // far-clique member as left query, r0 as right: never connected.
        let query = MbccQuery::new(vec![VertexId(9), VertexId(4)]);
        let mut stats = SearchStats::default();
        let err = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap_err();
        assert!(
            err == SearchError::Disconnected || err == SearchError::NoCandidate,
            "{err:?}"
        );
    }

    #[test]
    fn remove_batch_cascades_and_reports_order() {
        let (g, query, params) = fixture();
        let mut stats = SearchStats::default();
        let (mut candidate, _) = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap();
        let mut seen = Vec::new();
        // Deleting any left vertex collapses the whole left 4-clique
        // (3-core of 3 vertices is impossible).
        let removed = candidate.remove_batch_with(&[VertexId(3)], |view, v| {
            assert!(view.is_alive(v), "callback must fire pre-deletion");
            seen.push(v);
        });
        assert_eq!(removed.len(), 4);
        assert_eq!(seen, removed);
        assert_eq!(candidate.view.alive_count(), 4);
    }

    #[test]
    fn find_g0_threaded_is_bit_identical_at_every_thread_count() {
        let (g, query, params) = fixture();
        let mut ref_stats = SearchStats::default();
        let (reference, ref_counts) =
            Candidate::find_g0(&g, &query, &params, &mut ref_stats).unwrap();
        for threads in [1usize, 2, 3, 7, 0] {
            let mut stats = SearchStats::default();
            let (cand, counts) =
                Candidate::find_g0_threaded(&g, &query, &params, threads, &mut stats).unwrap();
            assert_eq!(
                cand.view.alive_set(),
                reference.view.alive_set(),
                "threads={threads}"
            );
            assert_eq!(cand.pair_alive, reference.pair_alive, "threads={threads}");
            assert_eq!(stats.butterfly_countings, ref_stats.butterfly_countings);
            for (a, b) in counts.iter().zip(&ref_counts) {
                assert_eq!(a.chi, b.chi, "threads={threads}");
                assert_eq!(a.max_left, b.max_left, "threads={threads}");
                assert_eq!(a.max_right, b.max_right, "threads={threads}");
            }
        }
    }

    #[test]
    fn recount_pair_updates_liveness_monotonically() {
        let (g, query, params) = fixture();
        let mut stats = SearchStats::default();
        let (mut candidate, _) = Candidate::find_g0(&g, &query, &params, &mut stats).unwrap();
        // Kill one butterfly wing: the left vertex l1 that carries cross edges.
        candidate.remove_batch_with(&[VertexId(1)], |_, _| {});
        let counts = candidate.recount_pair(0, &mut stats);
        assert!(!counts.satisfies_leader_condition(1));
        assert!(!candidate.pair_alive[0]);
        assert!(!candidate.cross_group_connected());
    }
}
