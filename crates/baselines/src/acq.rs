//! ACQ — attributed community query (Fang et al., PVLDB 2016).
//!
//! ACQ finds a connected k-core containing the query vertex whose members
//! *all share* the largest possible subset of the query keywords. Section 1
//! of the BCC paper uses it to motivate cross-group search: on a labeled
//! graph every vertex carries exactly one label, so a community spanning two
//! labels shares **zero** common keywords and ACQ necessarily returns an
//! empty (or single-group) answer. This implementation exists to make that
//! argument executable: [`AcqSearch::search`] implements the
//! single-query-vertex model faithfully for one-label-per-vertex graphs, and
//! [`AcqSearch::search_pair`] shows the cross-label failure.

use bcc_graph::{GraphView, Label, LabeledGraph, VertexId};

use crate::{BaselineError, BaselineResult};

/// The ACQ searcher (single-label-per-vertex specialization).
#[derive(Clone, Copy, Debug)]
pub struct AcqSearch {
    /// Core threshold k.
    pub k: u32,
}

impl Default for AcqSearch {
    fn default() -> Self {
        AcqSearch { k: 2 }
    }
}

impl AcqSearch {
    /// ACQ with query vertex `q` and query keywords `keywords`.
    ///
    /// The answer is the connected k-core around `q` whose members all share
    /// a keyword with the query — with one label per vertex, the best
    /// shared-keyword set is `{ℓ(q)}` if `ℓ(q) ∈ keywords`, so the answer is
    /// the k-core of `q`'s label group.
    pub fn search(
        &self,
        graph: &LabeledGraph,
        q: VertexId,
        keywords: &[Label],
    ) -> Result<BaselineResult, BaselineError> {
        if q.index() >= graph.vertex_count() {
            return Err(BaselineError::QueryOutOfRange(q));
        }
        if !keywords.contains(&graph.label(q)) {
            // No keyword can be shared by a community containing q.
            return Err(BaselineError::NoCommunity);
        }
        // Keyword cohesiveness: all vertices must share ≥ 1 keyword with
        // each other. With single labels that forces a single-label
        // community — q's label.
        let label = graph.label(q);
        let mut view = GraphView::from_vertices(
            graph,
            graph.vertices().filter(|&v| graph.label(v) == label),
        );
        bcc_cohesion::reduce_to_k_core(&mut view, self.k);
        if !view.is_alive(q) {
            return Err(BaselineError::NoCommunity);
        }
        let comp = view.component_of(q);
        let mut community: Vec<VertexId> =
            comp.iter().map(|i| VertexId(i as u32)).collect();
        community.sort_unstable();
        let dist = bcc_graph::bfs_distances(&view, q);
        let query_distance = community
            .iter()
            .map(|v| dist[v.index()])
            .max()
            .unwrap_or(0);
        Ok(BaselineResult {
            community,
            query_distance,
            iterations: 0,
        })
    }

    /// The paper's Section 1 scenario: two query vertices with different
    /// labels and keywords `{ℓ(q_l), ℓ(q_r)}`. Every community containing
    /// both queries has keyword cohesiveness 0, so ACQ returns empty —
    /// always `Err(NoCommunity)` when the labels differ.
    pub fn search_pair(
        &self,
        graph: &LabeledGraph,
        ql: VertexId,
        qr: VertexId,
    ) -> Result<BaselineResult, BaselineError> {
        for q in [ql, qr] {
            if q.index() >= graph.vertex_count() {
                return Err(BaselineError::QueryOutOfRange(q));
            }
        }
        if graph.label(ql) != graph.label(qr) {
            // Cross-group community ⇒ no common keyword ⇒ empty result.
            return Err(BaselineError::NoCommunity);
        }
        // Same label: degenerate to the single-vertex model and intersect
        // with the second query's membership.
        let result = self.search(graph, ql, &[graph.label(ql)])?;
        if result.contains(&qr) {
            Ok(result)
        } else {
            Err(BaselineError::Disconnected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// Two labeled 4-cliques with a full cross biclique between them.
    fn cross_group_graph() -> (LabeledGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for grp in [&l, &r] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for &x in &l {
            for &y in &r {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        (g, l, r)
    }

    #[test]
    fn single_label_query_returns_label_core() {
        let (g, l, _) = cross_group_graph();
        let result = AcqSearch { k: 3 }
            .search(&g, l[0], &[g.label(l[0])])
            .unwrap();
        assert_eq!(result.community, l, "the L 4-clique is the 3-core answer");
    }

    #[test]
    fn cross_label_pair_returns_empty_as_the_paper_argues() {
        // The Section 1 motivating claim: keyword cohesiveness is always 0
        // for cross-group queries, so ACQ finds nothing — even though a
        // perfectly good BCC exists in this graph.
        let (g, l, r) = cross_group_graph();
        let err = AcqSearch { k: 3 }.search_pair(&g, l[0], r[0]).unwrap_err();
        assert_eq!(err, BaselineError::NoCommunity);
    }

    #[test]
    fn keyword_mismatch_is_empty() {
        let (g, l, r) = cross_group_graph();
        let err = AcqSearch { k: 3 }
            .search(&g, l[0], &[g.label(r[0])])
            .unwrap_err();
        assert_eq!(err, BaselineError::NoCommunity);
    }

    #[test]
    fn same_label_pair_works() {
        let (g, l, _) = cross_group_graph();
        let result = AcqSearch { k: 3 }.search_pair(&g, l[0], l[1]).unwrap();
        assert!(result.contains(&l[0]) && result.contains(&l[1]));
    }
}
