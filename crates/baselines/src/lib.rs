//! Community-search baselines the paper compares against (Section 8):
//!
//! * [`CtcSearch`] — **CTC**, the closest truss community model of Huang et
//!   al. [20]: the connected k-truss containing the query vertices with
//!   maximum trussness, shrunk by farthest-vertex peeling to minimize the
//!   query distance.
//! * [`PsaSearch`] — **PSA**, the progressive minimum k-core search of Li et
//!   al. [23]: a small connected k-core containing the query vertices,
//!   found by expand-then-shrink greedy minimization (see DESIGN.md for the
//!   documented substitution of the original pruning machinery).
//!
//! Both models are label-blind — exactly the property the paper's case
//! studies exploit to show why BCC finds cross-group communities they miss.

pub mod acq;
pub mod ctc;
pub mod psa;

pub use acq::AcqSearch;
pub use ctc::{CtcIndex, CtcSearch};
pub use psa::PsaSearch;

use bcc_graph::VertexId;

/// A community found by a baseline method.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Community members, sorted ascending.
    pub community: Vec<VertexId>,
    /// Query distance of the community (Definition 5 of the BCC paper).
    pub query_distance: u32,
    /// Peeling iterations performed.
    pub iterations: usize,
}

impl BaselineResult {
    /// Returns `true` if `v` is in the community.
    pub fn contains(&self, v: &VertexId) -> bool {
        self.community.binary_search(v).is_ok()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.community.len()
    }

    /// Returns `true` when the community is empty.
    pub fn is_empty(&self) -> bool {
        self.community.is_empty()
    }
}

/// Why a baseline search failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// A query vertex is out of the graph's range.
    QueryOutOfRange(VertexId),
    /// No community satisfying the model contains the queries.
    NoCommunity,
    /// Query vertices are mutually disconnected in the candidate.
    Disconnected,
    /// The query set was empty.
    EmptyQuery,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::QueryOutOfRange(v) => write!(f, "query vertex {v} out of range"),
            BaselineError::NoCommunity => write!(f, "no qualifying community exists"),
            BaselineError::Disconnected => write!(f, "query vertices are disconnected"),
            BaselineError::EmptyQuery => write!(f, "query set is empty"),
        }
    }
}

impl std::error::Error for BaselineError {}
