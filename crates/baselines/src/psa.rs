//! PSA — progressive minimum k-core search (Li et al., PVLDB 2019).
//!
//! Model: a *small* connected k-core containing all query vertices. The
//! original PSA progressively tightens lower/upper bounds with expansion
//! orders; we implement the expand-then-shrink greedy that preserves its
//! comparison semantics (documented substitution — see DESIGN.md):
//!
//! 1. pick the largest k for which one connected k-core holds all queries
//!    (or use the caller's k);
//! 2. start from the queries' component of that k-core;
//! 3. repeatedly *try* deleting the farthest vertices; commit only if the
//!    k-core cascade keeps the queries alive and connected, otherwise stop.
//!
//! The result is a minimal-ish connected k-core around the queries — like
//! CTC it is label-blind.

use bcc_cohesion::{core_decomposition, reduce_to_k_core};
use bcc_graph::{GraphView, LabeledGraph, VertexId, INF_DIST};

use crate::{BaselineError, BaselineResult};

/// The PSA searcher.
#[derive(Clone, Copy, Debug)]
pub struct PsaSearch {
    /// Fixed k; `None` auto-selects the largest feasible k for the queries.
    pub k: Option<u32>,
    /// Bulk deletion of all farthest vertices per round.
    pub bulk: bool,
}

impl Default for PsaSearch {
    fn default() -> Self {
        PsaSearch { k: None, bulk: true }
    }
}

impl PsaSearch {
    /// Finds a small connected k-core containing `queries`, computing the
    /// core decomposition on the fly.
    pub fn search(
        &self,
        graph: &LabeledGraph,
        queries: &[VertexId],
    ) -> Result<BaselineResult, BaselineError> {
        let full = GraphView::new(graph);
        let coreness = core_decomposition(&full);
        self.search_with_coreness(graph, &coreness, queries)
    }

    /// [`PsaSearch::search`] with a precomputed (label-blind) core
    /// decomposition — lets a harness amortize the decomposition across
    /// query workloads.
    pub fn search_with_coreness(
        &self,
        graph: &LabeledGraph,
        coreness: &[u32],
        queries: &[VertexId],
    ) -> Result<BaselineResult, BaselineError> {
        if queries.is_empty() {
            return Err(BaselineError::EmptyQuery);
        }
        for &q in queries {
            if q.index() >= graph.vertex_count() {
                return Err(BaselineError::QueryOutOfRange(q));
            }
        }
        let k_cap = queries
            .iter()
            .map(|&q| coreness[q.index()])
            .min()
            .unwrap_or(0);
        let k = match self.k {
            Some(k) => {
                if k > k_cap {
                    return Err(BaselineError::NoCommunity);
                }
                k
            }
            None => {
                // Largest k whose k-core keeps the queries connected.
                let mut found = None;
                for k in (1..=k_cap).rev() {
                    if queries_connected_in_core(graph, coreness, k, queries) {
                        found = Some(k);
                        break;
                    }
                }
                found.ok_or(BaselineError::Disconnected)?
            }
        };

        // G0: queries' component of the k-core.
        let mut view = GraphView::from_vertices(
            graph,
            graph.vertices().filter(|&v| coreness[v.index()] >= k),
        );
        reduce_to_k_core(&mut view, k); // settle any view-boundary effects
        if queries.iter().any(|&q| !view.is_alive(q)) {
            return Err(BaselineError::NoCommunity);
        }
        let comp = view.component_of(queries[0]);
        if queries.iter().any(|&q| !comp.contains(q.index())) {
            return Err(BaselineError::Disconnected);
        }
        view.restrict_to(&comp);

        // Shrink: tentatively delete the farthest batch; commit while the
        // k-core cascade keeps all queries alive and connected.
        let mut iterations = 0usize;
        loop {
            let dists: Vec<Vec<u32>> = queries
                .iter()
                .map(|&q| bcc_graph::bfs_distances(&view, q))
                .collect();
            let mut max_qd = 0u32;
            let mut farthest: Vec<VertexId> = Vec::new();
            for v in view.alive_vertices() {
                let qd = dists.iter().map(|d| d[v.index()]).max().unwrap_or(0);
                match qd.cmp(&max_qd) {
                    std::cmp::Ordering::Greater => {
                        max_qd = qd;
                        farthest.clear();
                        farthest.push(v);
                    }
                    std::cmp::Ordering::Equal => farthest.push(v),
                    std::cmp::Ordering::Less => {}
                }
            }
            if max_qd == 0 {
                break;
            }
            let batch: Vec<VertexId> = if self.bulk {
                farthest
            } else {
                vec![farthest[0]]
            };
            // Tentative application on a clone (PSA's "progressive" check).
            let mut trial = view.clone();
            for &v in &batch {
                trial.remove_vertex(v);
            }
            reduce_to_k_core(&mut trial, k);
            let ok = queries.iter().all(|&q| trial.is_alive(q)) && {
                let comp = trial.component_of(queries[0]);
                queries.iter().all(|&q| comp.contains(q.index()))
            };
            if !ok {
                break;
            }
            let comp = trial.component_of(queries[0]);
            view = trial;
            view.restrict_to(&comp);
            iterations += 1;
        }

        let mut community: Vec<VertexId> = view.collect_vertices();
        community.sort_unstable();
        let dists: Vec<Vec<u32>> = queries
            .iter()
            .map(|&q| bcc_graph::bfs_distances(&view, q))
            .collect();
        let query_distance = community
            .iter()
            .map(|v| {
                dists
                    .iter()
                    .map(|d| d[v.index()])
                    .max()
                    .unwrap_or(INF_DIST)
            })
            .max()
            .unwrap_or(0);
        Ok(BaselineResult {
            community,
            query_distance,
            iterations,
        })
    }
}

fn queries_connected_in_core(
    graph: &LabeledGraph,
    coreness: &[u32],
    k: u32,
    queries: &[VertexId],
) -> bool {
    let view = GraphView::from_vertices(
        graph,
        graph.vertices().filter(|&v| coreness[v.index()] >= k),
    );
    if queries.iter().any(|&q| !view.is_alive(q)) {
        return false;
    }
    let dist = bcc_graph::bfs_distances(&view, queries[0]);
    queries.iter().all(|&q| dist[q.index()] != INF_DIST)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// A K5 with a long attached chain of K4s — the minimum k-core around
    /// queries inside the K5 should stay inside it.
    fn k5_with_tail() -> (LabeledGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let core: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(core[i], core[j]);
            }
        }
        let mut tail = Vec::new();
        let mut prev = core[4];
        for _ in 0..3 {
            let blk: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(blk[i], blk[j]);
                }
            }
            for &x in &blk[..3] {
                b.add_edge(prev, x);
            }
            prev = blk[3];
            tail.extend(blk);
        }
        let g = b.build();
        (g, core, tail)
    }

    #[test]
    fn finds_tight_core_around_queries() {
        let (g, core, tail) = k5_with_tail();
        let result = PsaSearch::default().search(&g, &[core[0], core[1]]).unwrap();
        assert!(result.contains(&core[0]) && result.contains(&core[1]));
        assert!(
            !result.contains(tail.last().unwrap()),
            "distant tail should not survive shrinking: {:?}",
            result.community
        );
    }

    #[test]
    fn fixed_k_is_respected() {
        let (g, core, _) = k5_with_tail();
        let result = PsaSearch { k: Some(3), bulk: true }
            .search(&g, &[core[0], core[1]])
            .unwrap();
        let view = GraphView::from_vertices(&g, result.community.iter().copied());
        for v in &result.community {
            assert!(view.degree(*v) >= 3, "k-core property violated at {v}");
        }
    }

    #[test]
    fn infeasible_k_errors() {
        let (g, core, _) = k5_with_tail();
        let err = PsaSearch { k: Some(10), bulk: true }
            .search(&g, &[core[0], core[1]])
            .unwrap_err();
        assert_eq!(err, BaselineError::NoCommunity);
    }

    #[test]
    fn result_is_connected_k_core() {
        let (g, core, tail) = k5_with_tail();
        let result = PsaSearch::default().search(&g, &[core[0], tail[0]]).unwrap();
        let view = GraphView::from_vertices(&g, result.community.iter().copied());
        let comp = view.component_of(core[0]);
        assert_eq!(comp.count(), result.len(), "community must be connected");
    }

    #[test]
    fn empty_query_rejected() {
        let (g, _, _) = k5_with_tail();
        assert_eq!(
            PsaSearch::default().search(&g, &[]).unwrap_err(),
            BaselineError::EmptyQuery
        );
    }
}
