//! CTC — closest truss community search (Huang et al., PVLDB 2015).
//!
//! Model: the connected k-truss containing all query vertices with the
//! *maximum* trussness k, shrunk by iteratively deleting the vertices
//! farthest from the queries (by query distance) while maintaining the
//! k-truss, returning the intermediate graph with minimum query distance —
//! the same greedy/2-approximation template the BCC paper adapts in its
//! Algorithm 1. Labels are ignored entirely.

use bcc_cohesion::support::EdgeIndex;
use bcc_cohesion::truss::{truss_decomposition, TrussState};
use bcc_graph::{BitSet, LabeledGraph, VertexId, INF_DIST};

use crate::{BaselineError, BaselineResult};

/// Reusable per-graph preprocessing for CTC: the edge index plus the global
/// truss decomposition (built once, shared across queries).
#[derive(Clone)]
pub struct CtcIndex {
    /// Dense edge ids.
    pub edge_index: EdgeIndex,
    /// Trussness per edge id.
    pub trussness: Vec<u32>,
}

impl CtcIndex {
    /// Decomposes `graph` (O(|E|^1.5)-ish support peeling).
    pub fn build(graph: &LabeledGraph) -> Self {
        let edge_index = EdgeIndex::new(graph);
        let trussness = truss_decomposition(graph, &edge_index);
        CtcIndex {
            edge_index,
            trussness,
        }
    }

    /// The largest trussness of any edge incident to `v` (an upper bound on
    /// the k for which `v` can join a k-truss).
    pub fn max_incident_trussness(&self, graph: &LabeledGraph, v: VertexId) -> u32 {
        graph
            .neighbors(v)
            .iter()
            .filter_map(|&u| self.edge_index.id_of(graph, v, u))
            .map(|e| self.trussness[e as usize])
            .max()
            .unwrap_or(0)
    }
}

/// The CTC searcher.
#[derive(Clone, Copy, Debug)]
pub struct CtcSearch {
    /// Delete all farthest vertices per iteration (matches the bulk
    /// deletion used by every method in the paper's evaluation).
    pub bulk: bool,
}

impl Default for CtcSearch {
    fn default() -> Self {
        CtcSearch { bulk: true }
    }
}

impl CtcSearch {
    /// Finds the closest truss community for `queries` using a prebuilt
    /// [`CtcIndex`].
    pub fn search(
        &self,
        graph: &LabeledGraph,
        index: &CtcIndex,
        queries: &[VertexId],
    ) -> Result<BaselineResult, BaselineError> {
        if queries.is_empty() {
            return Err(BaselineError::EmptyQuery);
        }
        for &q in queries {
            if q.index() >= graph.vertex_count() {
                return Err(BaselineError::QueryOutOfRange(q));
            }
        }

        // Largest k such that all queries sit in one connected k-truss.
        let k_cap = queries
            .iter()
            .map(|&q| index.max_incident_trussness(graph, q))
            .min()
            .unwrap_or(0);
        if k_cap < 2 {
            return Err(BaselineError::NoCommunity);
        }
        let mut best_k = None;
        let (mut lo, mut hi) = (2u32, k_cap);
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            if queries_connected_at(graph, index, mid, queries) {
                best_k = Some(mid);
                lo = mid + 1;
            } else {
                if mid == 2 {
                    break;
                }
                hi = mid - 1;
            }
        }
        let k = best_k.ok_or(BaselineError::Disconnected)?;

        // G0: the queries' component of the maximal k-truss.
        let mut state =
            TrussState::from_trussness(graph, index.edge_index.clone(), &index.trussness, k);
        state.restrict_to_component_of(queries[0]);
        let g0_alive: BitSet = {
            let mut s = BitSet::new(graph.vertex_count());
            for v in state.alive_vertices() {
                s.insert(v.index());
            }
            s
        };

        // Greedy peel: delete the farthest vertices, maintain the k-truss,
        // track the minimum-query-distance snapshot.
        let mut batches: Vec<Vec<VertexId>> = Vec::new();
        let mut snapshots: Vec<u32> = Vec::new();
        loop {
            if queries.iter().any(|&q| !state.is_alive(q)) {
                break;
            }
            let dists: Vec<Vec<u32>> = queries.iter().map(|&q| state.bfs_distances(q)).collect();
            if queries.iter().any(|&q| dists[0][q.index()] == INF_DIST) {
                break;
            }
            let mut max_qd = 0u32;
            let mut farthest: Vec<VertexId> = Vec::new();
            for v in state.alive_vertices() {
                let qd = dists
                    .iter()
                    .map(|d| d[v.index()])
                    .max()
                    .unwrap_or(INF_DIST);
                match qd.cmp(&max_qd) {
                    std::cmp::Ordering::Greater => {
                        max_qd = qd;
                        farthest.clear();
                        farthest.push(v);
                    }
                    std::cmp::Ordering::Equal => farthest.push(v),
                    std::cmp::Ordering::Less => {}
                }
            }
            snapshots.push(max_qd);
            if max_qd == 0 {
                break;
            }
            let batch = if self.bulk {
                farthest
            } else {
                vec![farthest[0]]
            };
            let removed = state.remove_vertices(&batch);
            batches.push(removed);
        }

        if snapshots.is_empty() {
            return Err(BaselineError::Disconnected);
        }
        let min_qd = *snapshots.iter().min().expect("non-empty");
        let best = snapshots
            .iter()
            .rposition(|&qd| qd == min_qd)
            .expect("minimum exists");

        // Replay: surviving vertex set at the best snapshot, re-trussed.
        let mut keep = g0_alive;
        for batch in &batches[..best] {
            for v in batch {
                keep.remove(v.index());
            }
        }
        let mut replay =
            TrussState::induced(graph, index.edge_index.clone(), &index.trussness, k, &keep);
        replay.restrict_to_component_of(queries[0]);
        let mut community: Vec<VertexId> = replay.alive_vertices().collect();
        community.sort_unstable();
        Ok(BaselineResult {
            community,
            query_distance: min_qd,
            iterations: batches.len(),
        })
    }
}

/// Are all queries in one connected component of the k-truss?
fn queries_connected_at(
    graph: &LabeledGraph,
    index: &CtcIndex,
    k: u32,
    queries: &[VertexId],
) -> bool {
    let state = TrussState::from_trussness(graph, index.edge_index.clone(), &index.trussness, k);
    if queries.iter().any(|&q| !state.is_alive(q)) {
        return false;
    }
    let dist = state.bfs_distances(queries[0]);
    queries.iter().all(|&q| dist[q.index()] != INF_DIST)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// Two K5s (labels A and B) sharing a K4 overlap region — a classic
    /// closest-truss fixture: the whole thing is a connected 4-truss, and
    /// the K5s are 5-trusses.
    fn fused_cliques() -> (LabeledGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let left: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        let right: Vec<_> = (0..5).map(|_| b.add_vertex("B")).collect();
        for grp in [&left, &right] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        // Fuse: connect left[3], left[4] with right[0], right[1] completely.
        for &x in &left[3..] {
            for &y in &right[..2] {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        (g, left, right)
    }

    #[test]
    fn finds_max_truss_containing_queries() {
        let (g, left, _right) = fused_cliques();
        let index = CtcIndex::build(&g);
        let result = CtcSearch::default()
            .search(&g, &index, &[left[0], left[1]])
            .unwrap();
        // Both queries are in the left K5 (a 5-truss) — CTC should find it
        // and not drag in the right K5.
        assert!(result.community.len() >= 5);
        assert!(result.contains(&left[0]) && result.contains(&left[1]));
        assert!(result.query_distance <= 1);
    }

    #[test]
    fn cross_clique_queries_get_the_4_truss() {
        let (g, left, right) = fused_cliques();
        let index = CtcIndex::build(&g);
        let result = CtcSearch::default()
            .search(&g, &index, &[left[0], right[4]])
            .unwrap();
        assert!(result.contains(&left[0]) && result.contains(&right[4]));
        // The community spans both cliques through the fused region.
        assert!(result.community.len() >= 8, "{:?}", result.community);
    }

    #[test]
    fn ignores_labels() {
        let (g, left, right) = fused_cliques();
        let index = CtcIndex::build(&g);
        let result = CtcSearch::default()
            .search(&g, &index, &[left[4], right[0]])
            .unwrap();
        let labels: std::collections::HashSet<_> =
            result.community.iter().map(|&v| g.label(v)).collect();
        assert_eq!(labels.len(), 2, "CTC freely mixes labels");
    }

    #[test]
    fn no_truss_for_isolated_query() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("A");
        let c = b.add_vertex("A");
        b.add_edge(a, c);
        let g = b.build();
        let index = CtcIndex::build(&g);
        // A single edge has trussness 2; a 2-truss exists, so the search
        // succeeds trivially.
        let result = CtcSearch::default().search(&g, &index, &[a, c]).unwrap();
        assert_eq!(result.community.len(), 2);
    }

    #[test]
    fn disconnected_queries_error() {
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_vertex("A")).collect();
        for grp in [&a, &c] {
            b.add_edge(grp[0], grp[1]);
            b.add_edge(grp[1], grp[2]);
            b.add_edge(grp[0], grp[2]);
        }
        let g = b.build();
        let index = CtcIndex::build(&g);
        let err = CtcSearch::default().search(&g, &index, &[a[0], c[0]]).unwrap_err();
        assert_eq!(err, BaselineError::Disconnected);
    }

    #[test]
    fn peeling_shrinks_distant_tail() {
        // A K4 containing both queries with a chain of K4s trailing off —
        // the tail inflates the query distance and must be peeled.
        let mut b = GraphBuilder::new();
        let core: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(core[i], core[j]);
            }
        }
        let mut prev = core.clone();
        let mut tail_members = Vec::new();
        for _hop in 0..3 {
            let next: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(next[i], next[j]);
                }
            }
            // Chain the blocks with a shared triangle to keep trussness 4...
            // connect prev[3] to next[0..3] fully so edges stay in triangles.
            for &y in &next[..3] {
                b.add_edge(prev[3], y);
            }
            tail_members.extend(next.iter().copied());
            prev = next;
        }
        let g = b.build();
        let index = CtcIndex::build(&g);
        let result = CtcSearch::default()
            .search(&g, &index, &[core[0], core[1]])
            .unwrap();
        assert!(result.contains(&core[0]));
        let far = tail_members.last().unwrap();
        assert!(!result.contains(far), "distant tail block must be peeled");
    }
}
