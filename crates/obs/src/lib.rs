//! `bcc-obs` — zero-dependency observability primitives.
//!
//! The paper's own evaluation is phase-oriented: Table 4 splits query time
//! into distance computation, core decomposition, butterfly counting
//! (Algorithm 3), and leader pairing (Algorithms 6–7). This crate turns that
//! breakdown into a first-class, always-on instrumentation layer shared by
//! the figure binaries and the live server:
//!
//! * [`Counter`] / [`Gauge`] — lock-free [`AtomicU64`] scalars;
//! * [`Histogram`] — a 64-bucket log₂ latency histogram with lock-free
//!   recording, mergeable [`HistogramSnapshot`]s, and quantile extraction
//!   whose error is bounded by the bucket width;
//! * [`Phase`] — the paper's query phases plus the mutation commit stages;
//! * [`Recorder`] — the trait search/commit code records phase spans
//!   through. [`NoopRecorder`] is the zero-cost default; [`QueryTrace`]
//!   accumulates per-phase totals for one query or one workload;
//! * [`PhaseTimer`] — an RAII span that records into a [`Recorder`] on drop.
//!
//! Everything is `&self` + atomics: one registry instance can be shared
//! across every worker thread with no locks on the record path. The crate
//! deliberately has **no dependencies** (it sits under `bcc-core`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log₂ buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Maps a recorded value to its bucket.
///
/// Bucket 0 holds exactly the value 0; bucket `i` (1 ≤ i ≤ 62) holds
/// `[2^(i-1), 2^i - 1]`; bucket 63 saturates, holding everything from
/// `2^62` up to `u64::MAX`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Largest value that lands in bucket `index` — the value quantile
/// extraction reports for samples in that bucket.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Saturating `Duration` → whole microseconds (the unit every histogram
/// and trace in this crate records).
#[inline]
pub fn duration_to_micros(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement (a gauge never wraps below zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with lock-free recording.
///
/// Values are whole numbers (this workspace records **microseconds**).
/// Recording is one `fetch_add` per bucket plus count/sum bookkeeping — no
/// locks, shareable across worker threads behind `&self`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(duration_to_micros(d));
    }

    /// Total samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy. Buckets are read individually (relaxed),
    /// so a snapshot taken concurrently with recording may be off by the
    /// in-flight samples — fine for telemetry, and exact once writers stop.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]: mergeable, queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another snapshot in. Merging is associative and commutative
    /// (element-wise saturating addition), so shard-local histograms can be
    /// combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The value at quantile `p` (0.0 ..= 1.0), reported as the upper bound
    /// of the bucket holding the rank-⌈p·count⌉ sample. The error is
    /// bounded by that bucket's width. Returns 0 on an empty snapshot.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean of the recorded values (exact — the sum is kept alongside the
    /// buckets), 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The instrumented phases: the paper's four query phases (Table 4) plus
/// the four mutation commit stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// BFS / incremental query-distance computation (Algorithms 1 and 5).
    QueryDistance,
    /// Label-core decomposition / reduction to the (k1,k2)-core.
    CoreDecomp,
    /// Full butterfly counting (Algorithm 3).
    ButterflyCounting,
    /// Leader butterfly-degree updates + leader pairing (Algorithms 6–7).
    LeaderPairing,
    /// Commit: staged delta applied onto the CSR snapshot (overlay apply).
    OverlayApply,
    /// Commit: Algorithm 4 label-core cascades for coreness δ.
    Cascade,
    /// Commit: Algorithm 7 butterfly-degree deltas for χ.
    ChiDelta,
    /// Commit: community-scoped result-cache invalidation / rekeying.
    CacheInvalidate,
    /// Sub-phase of [`Phase::QueryDistance`] on the parallel online path:
    /// frontier expansion (neighbor relaxation) of the level-synchronous
    /// BFS. Zero / unrecorded on the sequential reference path.
    QueryDistExpand,
    /// Sub-phase of [`Phase::QueryDistance`] on the parallel online path:
    /// merging per-worker discovery buffers into the next frontier.
    QueryDistMerge,
}

impl Phase {
    pub const COUNT: usize = 10;

    /// All phases, in display order (query phases, commit stages, then the
    /// parallel-path sub-phases — appended last so historical snapshot
    /// consumers keep their positional prefix).
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::QueryDistance,
        Phase::CoreDecomp,
        Phase::ButterflyCounting,
        Phase::LeaderPairing,
        Phase::OverlayApply,
        Phase::Cascade,
        Phase::ChiDelta,
        Phase::CacheInvalidate,
        Phase::QueryDistExpand,
        Phase::QueryDistMerge,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in JSON snapshots and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueryDistance => "query_distance",
            Phase::CoreDecomp => "core_decomp",
            Phase::ButterflyCounting => "butterfly_counting",
            Phase::LeaderPairing => "leader_pairing",
            Phase::OverlayApply => "overlay_apply",
            Phase::Cascade => "cascade",
            Phase::ChiDelta => "chi_delta",
            Phase::CacheInvalidate => "cache_invalidate",
            Phase::QueryDistExpand => "query_dist_expand",
            Phase::QueryDistMerge => "query_dist_merge",
        }
    }

    /// The inverse of [`Phase::name`] — resolves the snake_case names used
    /// in JSON snapshots, Prometheus labels, and fault-injection site specs
    /// back to the phase. `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// The hook instrumented code records phase spans through. Takes `&self`
/// so implementations are shared across threads; the intended contract is
/// lock-free recording (every implementation here uses atomics).
pub trait Recorder {
    fn record_phase(&self, phase: Phase, elapsed: Duration);
}

/// Forward through references so `&impl Recorder` works everywhere.
impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn record_phase(&self, phase: Phase, elapsed: Duration) {
        (**self).record_phase(phase, elapsed);
    }
}

/// The zero-cost default: recording is an inlined empty body, so code
/// instrumented against a `NoopRecorder` measures nothing and pays nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn record_phase(&self, _phase: Phase, _elapsed: Duration) {}
}

/// Per-phase accumulated totals (microseconds) for one query — or, merged,
/// for a whole workload. Lock-free; shareable across threads.
#[derive(Debug, Default)]
pub struct QueryTrace {
    phases: [AtomicU64; Phase::COUNT],
}

impl QueryTrace {
    pub fn new() -> QueryTrace {
        QueryTrace::default()
    }

    /// Accumulated time in `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_micros(self.phases[phase.index()].load(Ordering::Relaxed))
    }

    /// All per-phase totals in [`Phase::ALL`] order, in microseconds.
    pub fn snapshot_micros(&self) -> [u64; Phase::COUNT] {
        std::array::from_fn(|i| self.phases[i].load(Ordering::Relaxed))
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        Duration::from_micros(
            self.snapshot_micros().iter().fold(0u64, |a, &b| a.saturating_add(b)),
        )
    }
}

impl Recorder for QueryTrace {
    #[inline]
    fn record_phase(&self, phase: Phase, elapsed: Duration) {
        self.phases[phase.index()].fetch_add(duration_to_micros(elapsed), Ordering::Relaxed);
    }
}

/// RAII phase span: starts timing on construction, records into the
/// recorder on drop. `PhaseTimer::new(&rec, Phase::CoreDecomp)` brackets
/// whatever runs before the timer goes out of scope.
pub struct PhaseTimer<'r, R: Recorder + ?Sized> {
    recorder: &'r R,
    phase: Phase,
    started: Instant,
}

impl<'r, R: Recorder + ?Sized> PhaseTimer<'r, R> {
    #[inline]
    pub fn new(recorder: &'r R, phase: Phase) -> PhaseTimer<'r, R> {
        PhaseTimer { recorder, phase, started: Instant::now() }
    }
}

impl<R: Recorder + ?Sized> Drop for PhaseTimer<'_, R> {
    #[inline]
    fn drop(&mut self) {
        self.recorder.record_phase(self.phase, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 10) - 1), 10);
        assert_eq!(bucket_index(1 << 10), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
    }

    #[test]
    fn upper_bounds_bracket_their_bucket() {
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
        // The upper bound of bucket i-1 is strictly below bucket i's range.
        for i in 2..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_upper_bound(i - 1) + 1, 1u64 << (i - 1));
        }
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(12);
        assert_eq!(g.get(), 3);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_quantiles_on_known_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // p50: rank 50 → value 50 lives in bucket 6 ([32,63]).
        assert_eq!(s.quantile(0.50), 63);
        // p99: rank 99 → value 99 lives in bucket 7 ([64,127]).
        assert_eq!(s.quantile(0.99), 127);
        // p0 clamps to rank 1 → value 1, bucket 1.
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 127);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(3);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let all = Histogram::new();
        for v in [3, 100, 3] {
            all.record(v);
        }
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn saturation_at_extremes() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[63], 2);
        assert_eq!(s.quantile(0.5), u64::MAX);
        // The sum saturates on merge rather than wrapping.
        let mut m = s.clone();
        m.merge(&s);
        assert_eq!(m.sum, u64::MAX);
        assert_eq!(m.count, 4);
    }

    #[test]
    fn trace_and_phase_timer() {
        let trace = QueryTrace::new();
        trace.record_phase(Phase::Cascade, Duration::from_micros(7));
        trace.record_phase(Phase::Cascade, Duration::from_micros(5));
        assert_eq!(trace.get(Phase::Cascade), Duration::from_micros(12));
        {
            let _t = PhaseTimer::new(&trace, Phase::CoreDecomp);
            std::hint::black_box(());
        }
        // The timer recorded *something* (possibly 0 µs on a fast machine);
        // the counter path is what we pin: a second bracketed span only
        // grows the total.
        let first = trace.get(Phase::CoreDecomp);
        trace.record_phase(Phase::CoreDecomp, Duration::from_micros(3));
        assert_eq!(trace.get(Phase::CoreDecomp), first + Duration::from_micros(3));
        assert_eq!(trace.total(), Duration::from_micros(12) + first + Duration::from_micros(3));
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let noop = NoopRecorder;
        for phase in Phase::ALL {
            noop.record_phase(phase, Duration::from_secs(1));
            let _t = PhaseTimer::new(&noop, phase);
        }
    }

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Phase::COUNT);
        assert_eq!(Phase::ALL[0].name(), "query_distance");
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn phase_from_name_round_trips() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("no_such_phase"), None);
        assert_eq!(Phase::from_name(""), None);
    }
}
