//! Property tests for the log₂ histogram: bucket boundaries, merge
//! associativity/commutativity, quantile error bounded by the bucket
//! width, and saturation at the extremes.

use bcc_obs::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spread across the whole u64 range: a shift picks the magnitude,
/// an offset picks the position within that power of two.
fn wide_value() -> impl Strategy<Value = u64> {
    (0u64..64, 0u64..u64::MAX).prop_flat_map(|(shift, raw)| {
        let base = if shift == 0 { 0 } else { 1u64 << (shift - 1) };
        let span = base.max(1);
        Just(base.saturating_add(raw % span))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value lands in the bucket whose range contains it, and the
    /// bucket upper bound is the largest member of that bucket.
    #[test]
    fn bucket_contains_its_values(v in wide_value()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i), "{v} above bound of bucket {i}");
        if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
            // Lower edge of bucket i is 2^(i-1); v must not be below it.
            prop_assert!(v >= 1u64 << (i - 1), "{v} below bucket {i}");
        }
        // Monotone: a strictly larger magnitude never maps to a lower bucket.
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
    }

    /// merge(a, merge(b, c)) == merge(merge(a, b), c) and
    /// merge(a, b) == merge(b, a): histograms combine in any order.
    #[test]
    fn merge_associative_commutative(
        xs in proptest::collection::vec(wide_value(), 0..24),
        ys in proptest::collection::vec(wide_value(), 0..24),
        zs in proptest::collection::vec(wide_value(), 0..24),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merging is recording: the merged snapshot equals one histogram
        // fed all three value sets — except for the sum when the exact
        // total overflows u64 (live recording wraps its atomic, merging
        // saturates; buckets and count agree regardless).
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let direct = snapshot_of(&all);
        prop_assert_eq!(&ab_c.buckets, &direct.buckets);
        prop_assert_eq!(ab_c.count, direct.count);
        let exact_sum = all.iter().try_fold(0u64, |acc, &v| acc.checked_add(v));
        if let Some(sum) = exact_sum {
            prop_assert_eq!(ab_c.sum, sum);
            prop_assert_eq!(direct.sum, sum);
        } else {
            prop_assert_eq!(ab_c.sum, u64::MAX);
        }
    }

    /// The reported quantile is >= the true order statistic and within the
    /// holding bucket's width of it (log₂ buckets ⇒ ≤ 2x relative error).
    #[test]
    fn quantile_error_bounded_by_bucket_width(
        values in proptest::collection::vec(wide_value(), 1..64),
        pq in 0u64..101,
    ) {
        let p = pq as f64 / 100.0;
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let reported = snap.quantile(p);
        // Reported value is the upper bound of the exact value's bucket:
        // never below the true order statistic, and within its bucket.
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        prop_assert_eq!(bucket_index(reported), bucket_index(exact));
        let i = bucket_index(exact);
        if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
            let width = 1u64 << (i - 1); // bucket i spans [2^(i-1), 2^i - 1]
            prop_assert!(reported - exact < width);
        }
    }

    /// Counts and sums survive recording in any order; saturation values
    /// pile into the top bucket without wrapping.
    #[test]
    fn extremes_saturate(
        values in proptest::collection::vec(wide_value(), 0..16),
        giants in 0usize..4,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for _ in 0..giants {
            h.record(u64::MAX);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, (values.len() + giants) as u64);
        prop_assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1] as usize,
            giants + values.iter().filter(|&&v| v >= (1u64 << 62)).count());
        if giants > 0 {
            prop_assert_eq!(s.quantile(1.0), u64::MAX);
        }
        let total: u64 = s.buckets.iter().sum();
        prop_assert_eq!(total, s.count);
    }
}
