//! k-truss decomposition and maintenance (substrate for the CTC baseline).
//!
//! A k-truss is a subgraph in which every edge is contained in at least
//! `k − 2` triangles *within the subgraph*. `truss_decomposition` assigns
//! each edge its trussness (the largest k for which it survives) by peeling
//! edges in ascending support order. [`TrussState`] maintains a k-truss
//! under the vertex deletions performed by the CTC search loop.

use bcc_graph::{BitSet, LabeledGraph, VertexId};

use crate::support::{triangle_supports, EdgeIndex};

/// Trussness per edge id (≥ 2 for every edge; an edge in no triangle has
/// trussness exactly 2).
pub fn truss_decomposition(graph: &LabeledGraph, index: &EdgeIndex) -> Vec<u32> {
    let m = index.edge_count();
    let mut support = triangle_supports(graph, index);
    let mut trussness = vec![2u32; m];
    let mut removed = vec![false; m];

    // Bucket peeling over edges keyed by current support.
    let max_support = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_support + 1];
    for (id, &s) in support.iter().enumerate() {
        buckets[s as usize].push(id as u32);
    }
    let mut processed = 0usize;
    let mut level = 0usize;
    let mut k = 2u32;
    while processed < m {
        // Find the lowest non-empty bucket at or below the current frontier.
        while level <= max_support && buckets[level].is_empty() {
            level += 1;
        }
        if level > max_support {
            break;
        }
        let id = buckets[level].pop().unwrap();
        if removed[id as usize] {
            continue;
        }
        let s = support[id as usize] as usize;
        if s != level {
            // Stale bucket entry; reinsert at the true level.
            buckets[s].push(id);
            if s < level {
                level = s;
            }
            continue;
        }
        k = k.max(s as u32 + 2);
        trussness[id as usize] = k;
        removed[id as usize] = true;
        processed += 1;

        let (u, v) = index.endpoints(id);
        for w in common_alive_neighbors(graph, index, &removed, u, v) {
            for other in [
                index.id_of(graph, u, w).expect("triangle edge exists"),
                index.id_of(graph, v, w).expect("triangle edge exists"),
            ] {
                if !removed[other as usize] && support[other as usize] > 0 {
                    support[other as usize] -= 1;
                    let ns = support[other as usize] as usize;
                    buckets[ns].push(other);
                    if ns < level {
                        level = ns;
                    }
                }
            }
        }
    }
    trussness
}

fn common_alive_neighbors(
    graph: &LabeledGraph,
    index: &EdgeIndex,
    removed: &[bool],
    u: VertexId,
    v: VertexId,
) -> Vec<VertexId> {
    let (mut a, mut b) = (graph.neighbors(u).iter(), graph.neighbors(v).iter());
    let (mut x, mut y) = (a.next(), b.next());
    let mut out = Vec::new();
    while let (Some(&p), Some(&q)) = (x, y) {
        match p.cmp(&q) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                let eu = index.id_of(graph, u, p).expect("edge exists");
                let ev = index.id_of(graph, v, p).expect("edge exists");
                if !removed[eu as usize] && !removed[ev as usize] {
                    out.push(p);
                }
                x = a.next();
                y = b.next();
            }
        }
    }
    out
}

/// A maximal k-truss under vertex deletions.
///
/// Unlike [`bcc_graph::GraphView`], liveness here is per *edge*: a vertex is
/// alive while it has at least one alive incident edge. Removing a vertex
/// kills its incident edges, which may push other edges below the `k − 2`
/// support threshold and cascade.
#[derive(Clone)]
pub struct TrussState<'g> {
    graph: &'g LabeledGraph,
    index: EdgeIndex,
    k: u32,
    edge_alive: Vec<bool>,
    support: Vec<u32>,
    degree: Vec<u32>,
    alive: BitSet,
    alive_count: usize,
    /// Vertices that died since the last drain (batch + collateral), in
    /// death order — the CTC search replays these for its best snapshot.
    death_log: Vec<VertexId>,
}

impl<'g> TrussState<'g> {
    /// Builds the maximal k-truss of `graph` (edges with trussness ≥ `k`).
    pub fn k_truss(graph: &'g LabeledGraph, k: u32) -> Self {
        let index = EdgeIndex::new(graph);
        let trussness = truss_decomposition(graph, &index);
        Self::from_trussness(graph, index, &trussness, k)
    }

    /// Builds the maximal k-truss from a precomputed trussness vector
    /// (avoids redecomposition when probing several k values).
    pub fn from_trussness(
        graph: &'g LabeledGraph,
        index: EdgeIndex,
        trussness: &[u32],
        k: u32,
    ) -> Self {
        let m = index.edge_count();
        let edge_alive: Vec<bool> = (0..m).map(|e| trussness[e] >= k).collect();
        let n = graph.vertex_count();
        let mut degree = vec![0u32; n];
        for e in 0..m as u32 {
            if edge_alive[e as usize] {
                let (u, v) = index.endpoints(e);
                degree[u.index()] += 1;
                degree[v.index()] += 1;
            }
        }
        let mut alive = BitSet::new(n);
        let mut alive_count = 0;
        for (v, &deg) in degree.iter().enumerate() {
            if deg > 0 {
                alive.insert(v);
                alive_count += 1;
            }
        }
        // Support within the alive edge set.
        let mut state = TrussState {
            graph,
            index,
            k,
            edge_alive,
            support: Vec::new(),
            degree,
            alive,
            alive_count,
            death_log: Vec::new(),
        };
        state.support = state.recompute_support();
        state
    }

    /// The maximal k-truss of the subgraph of `graph` induced by `keep`,
    /// starting from precomputed global trussness (used to replay the CTC
    /// search's best snapshot).
    pub fn induced(
        graph: &'g LabeledGraph,
        index: EdgeIndex,
        trussness: &[u32],
        k: u32,
        keep: &BitSet,
    ) -> Self {
        let mut state = Self::from_trussness(graph, index, trussness, k);
        let outside: Vec<VertexId> = state
            .alive_vertices()
            .filter(|v| !keep.contains(v.index()))
            .collect();
        state.remove_vertices(&outside);
        state.death_log.clear();
        state
    }

    fn recompute_support(&self) -> Vec<u32> {
        let m = self.index.edge_count();
        let mut support = vec![0u32; m];
        for e in 0..m as u32 {
            if !self.edge_alive[e as usize] {
                continue;
            }
            let (u, v) = self.index.endpoints(e);
            support[e as usize] =
                common_alive_neighbors(self.graph, &self.index, &self.dead_mask(), u, v).len()
                    as u32;
        }
        support
    }

    fn dead_mask(&self) -> Vec<bool> {
        self.edge_alive.iter().map(|&a| !a).collect()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g LabeledGraph {
        self.graph
    }

    /// The truss parameter k.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Returns `true` if `v` still has an alive incident edge.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive.contains(v.index())
    }

    /// Number of alive vertices.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of alive edges.
    pub fn edge_count(&self) -> usize {
        self.edge_alive.iter().filter(|&&a| a).count()
    }

    /// Iterates alive vertices.
    pub fn alive_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive.iter().map(|i| VertexId(i as u32))
    }

    /// Iterates the neighbors of `v` reachable over alive edges.
    pub fn neighbors<'a>(&'a self, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        self.graph.neighbors(v).iter().copied().filter(move |&u| {
            self.index
                .id_of(self.graph, v, u)
                .is_some_and(|e| self.edge_alive[e as usize])
        })
    }

    /// BFS distances over alive edges from `source`.
    pub fn bfs_distances(&self, source: VertexId) -> Vec<u32> {
        let n = self.graph.vertex_count();
        let mut dist = vec![u32::MAX; n];
        if !self.is_alive(source) {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let next = dist[v.index()] + 1;
            for u in self.neighbors(v) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = next;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Restricts the state to the connected component of `v` (over alive
    /// edges). Vertices outside the component are removed without cascade
    /// (removing whole components cannot violate support constraints inside
    /// the kept component).
    pub fn restrict_to_component_of(&mut self, v: VertexId) {
        let dist = self.bfs_distances(v);
        let outside: Vec<VertexId> = self
            .alive_vertices()
            .filter(|u| dist[u.index()] == u32::MAX)
            .collect();
        for u in outside {
            // Kill edges without cascading: both endpoints are outside.
            let incident: Vec<u32> = self.alive_incident_edges(u);
            for e in incident {
                self.kill_edge(e);
            }
        }
        self.death_log.clear();
    }

    fn alive_incident_edges(&self, v: VertexId) -> Vec<u32> {
        self.graph
            .neighbors(v)
            .iter()
            .filter_map(|&u| self.index.id_of(self.graph, v, u))
            .filter(|&e| self.edge_alive[e as usize])
            .collect()
    }

    fn kill_edge(&mut self, e: u32) {
        if !std::mem::replace(&mut self.edge_alive[e as usize], false) {
            return;
        }
        let (u, v) = self.index.endpoints(e);
        for w in [u, v] {
            self.degree[w.index()] -= 1;
            if self.degree[w.index()] == 0 && self.alive.remove(w.index()) {
                self.alive_count -= 1;
                self.death_log.push(w);
            }
        }
    }

    /// Removes vertices `batch` and cascades the k-truss condition.
    /// Returns every vertex that died — the batch plus every collateral
    /// death from edge cascades — in death order.
    pub fn remove_vertices(&mut self, batch: &[VertexId]) -> Vec<VertexId> {
        self.death_log.clear();
        let mut dying_edges: Vec<u32> = Vec::new();
        for &v in batch {
            if self.is_alive(v) {
                dying_edges.extend(self.alive_incident_edges(v));
            }
        }
        self.cascade_edges(dying_edges);
        std::mem::take(&mut self.death_log)
    }

    /// Removes the given edges, decrementing supports of triangle partners
    /// and cascading any edge whose support drops below `k − 2`.
    fn cascade_edges(&mut self, seeds: Vec<u32>) {
        let threshold = self.k.saturating_sub(2);
        let mut queue: std::collections::VecDeque<u32> = seeds.into();
        while let Some(e) = queue.pop_front() {
            if !self.edge_alive[e as usize] {
                continue;
            }
            let (u, v) = self.index.endpoints(e);
            // Collect triangle partners *before* killing the edge.
            let partners = common_alive_neighbors(self.graph, &self.index, &self.dead_mask(), u, v);
            self.kill_edge(e);
            for w in partners {
                for other in [
                    self.index.id_of(self.graph, u, w).expect("edge exists"),
                    self.index.id_of(self.graph, v, w).expect("edge exists"),
                ] {
                    if self.edge_alive[other as usize] {
                        let s = &mut self.support[other as usize];
                        *s = s.saturating_sub(1);
                        if *s < threshold {
                            queue.push_back(other);
                        }
                    }
                }
            }
        }
    }

    /// Verifies the k-truss invariant (every alive edge has ≥ k−2 alive
    /// triangles). For tests and debugging.
    pub fn check_invariant(&self) -> bool {
        let threshold = self.k.saturating_sub(2);
        let dead = self.dead_mask();
        (0..self.index.edge_count() as u32).all(|e| {
            if !self.edge_alive[e as usize] {
                return true;
            }
            let (u, v) = self.index.endpoints(e);
            common_alive_neighbors(self.graph, &self.index, &dead, u, v).len() as u32 >= threshold
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    fn clique(n: usize) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex("A")).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.build()
    }

    #[test]
    fn clique_trussness() {
        let g = clique(5);
        let index = EdgeIndex::new(&g);
        let trussness = truss_decomposition(&g, &index);
        assert!(trussness.iter().all(|&t| t == 5), "K5 edges have trussness 5: {trussness:?}");
    }

    #[test]
    fn triangle_chain_trussness() {
        // Two triangles sharing an edge: the shared edge has 2 triangles but
        // its partners have 1 each, so the whole graph is a 3-truss only.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(vs[u], vs[v]);
        }
        let g = b.build();
        let index = EdgeIndex::new(&g);
        let trussness = truss_decomposition(&g, &index);
        assert!(trussness.iter().all(|&t| t == 3), "{trussness:?}");
    }

    #[test]
    fn cycle_is_2_truss() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for i in 0..5 {
            b.add_edge(vs[i], vs[(i + 1) % 5]);
        }
        let g = b.build();
        let index = EdgeIndex::new(&g);
        let trussness = truss_decomposition(&g, &index);
        assert!(trussness.iter().all(|&t| t == 2));
    }

    #[test]
    fn k_truss_state_extraction() {
        // K5 plus a pendant triangle: the K5 is a 5-truss, the triangle only a 3-truss.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..7).map(|_| b.add_vertex("A")).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.add_edge(vs[4], vs[5]);
        b.add_edge(vs[4], vs[6]);
        b.add_edge(vs[5], vs[6]);
        let g = b.build();
        let state = TrussState::k_truss(&g, 4);
        assert_eq!(state.alive_count(), 5);
        assert!(!state.is_alive(vs[5]));
        assert!(state.check_invariant());
    }

    #[test]
    fn vertex_removal_cascades() {
        let g = clique(5);
        let mut state = TrussState::k_truss(&g, 5);
        assert_eq!(state.alive_count(), 5);
        // Removing any vertex of K5 destroys the 5-truss entirely.
        state.remove_vertices(&[VertexId(0)]);
        assert_eq!(state.alive_count(), 0);
        assert!(state.check_invariant());
    }

    #[test]
    fn removal_cascade_partial() {
        // Two K4s sharing no vertices, joined by one edge; 4-truss = both K4s.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..8).map(|_| b.add_vertex("A")).collect();
        for base in [0, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    b.add_edge(vs[i], vs[j]);
                }
            }
        }
        b.add_edge(vs[0], vs[4]);
        let g = b.build();
        let mut state = TrussState::k_truss(&g, 4);
        assert_eq!(state.alive_count(), 8);
        // Deleting a vertex of the first K4 kills only that K4.
        state.remove_vertices(&[VertexId(1)]);
        assert_eq!(state.alive_count(), 4);
        assert!(state.is_alive(VertexId(5)));
        assert!(state.check_invariant());
    }

    #[test]
    fn bfs_over_truss_edges() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..6).map(|_| b.add_vertex("A")).collect();
        // Triangle 0-1-2 and triangle 3-4-5 joined by a triangle-free edge 2-3.
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(vs[u], vs[v]);
        }
        let g = b.build();
        let state = TrussState::k_truss(&g, 3);
        // Edge 2-3 has trussness 2, so it is absent from the 3-truss: the
        // two triangles are disconnected.
        let dist = state.bfs_distances(VertexId(0));
        assert_eq!(dist[2], 1);
        assert_eq!(dist[3], u32::MAX);
        let mut state = state;
        state.restrict_to_component_of(VertexId(0));
        assert_eq!(state.alive_count(), 3);
    }
}
