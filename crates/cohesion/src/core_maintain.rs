//! Incremental k-core maintenance under vertex deletions.
//!
//! These routines implement the peeling cascades of Algorithm 2 (initial
//! extraction of the `k1`-core and `k2`-core) and Algorithm 4 (maintenance
//! after each removal round of Algorithm 1). Rather than recomputing the
//! decomposition after every deletion, we cascade: whenever a vertex's
//! (intra-label) degree drops below its label's threshold it joins the
//! deletion queue. Total cost across a whole peeling run is O(|E|), the
//! bound used in the paper's complexity analysis (Theorem 4).

use bcc_graph::{GraphRead, GraphView, Label, VertexId};

/// Per-label k-core thresholds for the label-induced core conditions of
/// Definition 4. Labels with no entry are *excluded*: their vertices are
/// peeled unconditionally (this is how Algorithm 2 line 1 restricts the
/// candidate to the two query labels).
#[derive(Clone, Debug)]
pub struct LabelCoreThresholds {
    k_of_label: Vec<Option<u32>>,
}

impl LabelCoreThresholds {
    /// Thresholds over a graph with `label_count` labels; all labels
    /// initially excluded.
    pub fn new(label_count: usize) -> Self {
        LabelCoreThresholds {
            k_of_label: vec![None; label_count],
        }
    }

    /// Requires the induced subgraph of `label` to be a `k`-core.
    pub fn require(&mut self, label: Label, k: u32) -> &mut Self {
        self.k_of_label[label.index()] = Some(k);
        self
    }

    /// The threshold for `label`, or `None` if the label is excluded.
    #[inline]
    pub fn get(&self, label: Label) -> Option<u32> {
        self.k_of_label[label.index()]
    }

    /// Labels that carry a requirement, with their k.
    pub fn required_labels(&self) -> impl Iterator<Item = (Label, u32)> + '_ {
        self.k_of_label
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| (Label(i as u32), k)))
    }
}

/// Returns `true` if `v` violates its label's core condition (or carries an
/// excluded label).
#[inline]
fn violates<G: GraphRead>(view: &GraphView<'_, G>, thresholds: &LabelCoreThresholds, v: VertexId) -> bool {
    match thresholds.get(view.graph().label(v)) {
        Some(k) => (view.intra_degree(v) as u32) < k,
        None => true,
    }
}

/// Peels the view down to the maximal subgraph in which every vertex of a
/// required label has intra-label degree ≥ its threshold, and no vertex of
/// an excluded label survives. Returns the removed vertices in deletion
/// order.
pub fn reduce_to_label_core<G: GraphRead>(
    view: &mut GraphView<'_, G>,
    thresholds: &LabelCoreThresholds,
) -> Vec<VertexId> {
    let seeds: Vec<VertexId> = view
        .alive_vertices()
        .filter(|&v| violates(view, thresholds, v))
        .collect();
    cascade_from(view, thresholds, seeds)
}

/// Parallel variant of [`reduce_to_label_core`]: computes every alive
/// vertex's label coreness with the level-synchronous parallel peel and then
/// removes each vertex whose label is excluded or whose coreness falls short
/// of its threshold.
///
/// This is equivalent to the sequential cascade because the label core is
/// unique: a vertex survives the cascade iff its coreness within its own
/// label group is ≥ the label's threshold, and [`GraphView`] state (alive
/// set + live degree counters) depends only on the final alive set, never on
/// removal order. Only the *order* of the returned removals differs —
/// ascending vertex id here versus cascade discovery order.
pub fn reduce_to_label_core_parallel<G: GraphRead + Sync>(
    view: &mut GraphView<'_, G>,
    thresholds: &LabelCoreThresholds,
    threads: usize,
) -> Vec<VertexId> {
    let coreness = crate::label_core_decomposition_view_parallel(view, threads);
    let doomed: Vec<VertexId> = view
        .alive_vertices()
        .filter(|&v| match thresholds.get(view.graph().label(v)) {
            Some(k) => coreness[v.index()] < k,
            None => true,
        })
        .collect();
    for &v in &doomed {
        view.remove_vertex(v);
    }
    doomed
}

/// After `removed` vertices were deleted externally (e.g. the farthest-vertex
/// deletions of Algorithm 1 line 7), cascades the label-core conditions from
/// the affected neighborhoods. Returns the additional vertices peeled.
pub fn cascade_label_core<G: GraphRead>(
    view: &mut GraphView<'_, G>,
    thresholds: &LabelCoreThresholds,
    removed: &[VertexId],
) -> Vec<VertexId> {
    let mut seeds = Vec::new();
    for &r in removed {
        debug_assert!(!view.is_alive(r), "cascade seeds must already be deleted");
        for u in view.graph().neighbors_iter(r) {
            if view.is_alive(u) && violates(view, thresholds, u) {
                seeds.push(u);
            }
        }
    }
    cascade_from(view, thresholds, seeds)
}

/// The Algorithm 4 cascade seeded from explicitly named *alive* vertices —
/// the edge-granular entry point. When an edge `{u, v}` is deleted, only its
/// endpoints can newly violate their label-core condition, so seeding the
/// cascade with `[u, v]` maintains the label core without the full seed scan
/// of [`reduce_to_label_core`]. Seeds that satisfy their condition (or are
/// already dead) are simply skipped. Returns the vertices peeled, in
/// deletion order.
pub fn cascade_label_core_from_seeds<G: GraphRead>(
    view: &mut GraphView<'_, G>,
    thresholds: &LabelCoreThresholds,
    seeds: &[VertexId],
) -> Vec<VertexId> {
    let seeds: Vec<VertexId> = seeds
        .iter()
        .copied()
        .filter(|&v| view.is_alive(v) && violates(view, thresholds, v))
        .collect();
    cascade_from(view, thresholds, seeds)
}

fn cascade_from<G: GraphRead>(
    view: &mut GraphView<'_, G>,
    thresholds: &LabelCoreThresholds,
    seeds: Vec<VertexId>,
) -> Vec<VertexId> {
    let mut queue: std::collections::VecDeque<VertexId> = seeds.into();
    let mut removed = Vec::new();
    while let Some(v) = queue.pop_front() {
        if !view.is_alive(v) {
            continue;
        }
        if !violates(view, thresholds, v) {
            continue; // requeued vertex recovered (can happen with duplicates)
        }
        let neighbors: Vec<VertexId> = view.same_label_neighbors(v).collect();
        view.remove_vertex(v);
        removed.push(v);
        for u in neighbors {
            if violates(view, thresholds, u) {
                queue.push_back(u);
            }
        }
    }
    removed
}

/// Peels the view to its (plain, label-blind) k-core: every surviving vertex
/// has live degree ≥ `k`. Returns the removed vertices. Used by the PSA
/// baseline and by tests.
pub fn reduce_to_k_core<G: GraphRead>(view: &mut GraphView<'_, G>, k: u32) -> Vec<VertexId> {
    let mut queue: std::collections::VecDeque<VertexId> = view
        .alive_vertices()
        .filter(|&v| (view.degree(v) as u32) < k)
        .collect();
    let mut removed = Vec::new();
    while let Some(v) = queue.pop_front() {
        if !view.is_alive(v) || (view.degree(v) as u32) >= k {
            continue;
        }
        let neighbors: Vec<VertexId> = view.neighbors(v).collect();
        view.remove_vertex(v);
        removed.push(v);
        for u in neighbors {
            if (view.degree(u) as u32) < k {
                queue.push_back(u);
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    /// Two labeled cliques (sizes 5 and 4) joined by a single cross edge.
    fn two_cliques() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(a[i], a[j]);
            }
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(c[i], c[j]);
            }
        }
        b.add_edge(a[0], c[0]);
        b.build()
    }

    #[test]
    fn label_core_peels_excluded_labels() {
        let g = two_cliques();
        let mut view = GraphView::new(&g);
        let mut thresholds = LabelCoreThresholds::new(g.label_count());
        thresholds.require(g.label(VertexId(0)), 4); // label A needs 4-core
        let removed = reduce_to_label_core(&mut view, &thresholds);
        // All 4 B-vertices are peeled (excluded label); the A 5-clique stays.
        assert_eq!(removed.len(), 4);
        assert_eq!(view.alive_count(), 5);
        assert!(view.is_alive(VertexId(0)));
    }

    use bcc_graph::VertexId;

    #[test]
    fn label_core_respects_per_label_k() {
        let g = two_cliques();
        let mut view = GraphView::new(&g);
        let mut thresholds = LabelCoreThresholds::new(g.label_count());
        thresholds.require(g.label(VertexId(0)), 4);
        thresholds.require(g.label(VertexId(5)), 3);
        let removed = reduce_to_label_core(&mut view, &thresholds);
        assert!(removed.is_empty(), "both cliques already satisfy their cores");
        assert_eq!(view.alive_count(), 9);
    }

    #[test]
    fn label_core_cascades() {
        let g = two_cliques();
        let mut view = GraphView::new(&g);
        let mut thresholds = LabelCoreThresholds::new(g.label_count());
        thresholds.require(g.label(VertexId(0)), 4);
        thresholds.require(g.label(VertexId(5)), 3);
        reduce_to_label_core(&mut view, &thresholds);
        // Externally delete one A vertex: the 5-clique drops to a 4-clique,
        // whose members have intra-degree 3 < 4 → whole A side cascades away.
        view.remove_vertex(VertexId(1));
        let extra = cascade_label_core(&mut view, &thresholds, &[VertexId(1)]);
        assert_eq!(extra.len(), 4);
        assert_eq!(view.alive_count(), 4, "only the B clique remains");
    }

    #[test]
    fn seeded_cascade_matches_full_seed_scan() {
        // Delete the homogeneous edge {a0, a1}: the A 5-clique becomes a
        // 5-cycle-ish graph whose members cannot sustain a 4-core. Seeding
        // the cascade with just the edge endpoints must peel exactly what a
        // full violation scan peels.
        let g = two_cliques();
        let shrunk = bcc_graph::apply_change(
            &g,
            &bcc_graph::EdgeChange {
                u: VertexId(0),
                v: VertexId(1),
                op: bcc_graph::EdgeOp::Remove,
            },
        );
        let mut thresholds = LabelCoreThresholds::new(g.label_count());
        thresholds.require(g.label(VertexId(0)), 4);
        thresholds.require(g.label(VertexId(5)), 3);

        let mut seeded = GraphView::new(&shrunk);
        let mut removed_seeded =
            cascade_label_core_from_seeds(&mut seeded, &thresholds, &[VertexId(0), VertexId(1)]);
        let mut scanned = GraphView::new(&shrunk);
        let mut removed_scanned = reduce_to_label_core(&mut scanned, &thresholds);
        removed_seeded.sort_unstable();
        removed_scanned.sort_unstable();
        assert_eq!(removed_seeded, removed_scanned);
        assert_eq!(seeded.alive_count(), 4, "only the B clique survives");
        // Satisfied or dead seeds are no-ops.
        let extra =
            cascade_label_core_from_seeds(&mut seeded, &thresholds, &[VertexId(0), VertexId(5)]);
        assert!(extra.is_empty());
    }

    #[test]
    fn plain_k_core_reduction() {
        // 4-clique with a tail of two vertices.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..6).map(|_| b.add_vertex("A")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.add_edge(vs[3], vs[4]);
        b.add_edge(vs[4], vs[5]);
        let g = b.build();
        let mut view = GraphView::new(&g);
        let removed = reduce_to_k_core(&mut view, 3);
        assert_eq!(removed.len(), 2);
        assert_eq!(view.alive_count(), 4);
        // k larger than max coreness empties the graph.
        let mut view2 = GraphView::new(&g);
        let removed2 = reduce_to_k_core(&mut view2, 4);
        assert_eq!(removed2.len(), 6);
        assert_eq!(view2.alive_count(), 0);
    }

    #[test]
    fn parallel_label_core_reduction_matches_sequential() {
        // xorshift64* random labeled graph, large enough to exercise the
        // multi-worker peel (PARALLEL_FRONTIER_MIN in core_decomp).
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut b = GraphBuilder::new();
        let n = 600u32;
        for i in 0..n {
            b.add_vertex(["A", "B", "C"][(i % 3) as usize]);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if next() % 1000 < 20 {
                    b.add_edge(VertexId(i), VertexId(j));
                }
            }
        }
        let g = b.build();
        let mut thresholds = LabelCoreThresholds::new(g.label_count());
        thresholds.require(g.label(VertexId(0)), 3); // A
        thresholds.require(g.label(VertexId(1)), 2); // B — C excluded
        let mut reference = GraphView::new(&g);
        let mut removed_seq = reduce_to_label_core(&mut reference, &thresholds);
        removed_seq.sort_unstable();
        for threads in [1usize, 2, 3, 7, 0] {
            let mut view = GraphView::new(&g);
            let mut removed =
                reduce_to_label_core_parallel(&mut view, &thresholds, threads);
            removed.sort_unstable();
            assert_eq!(removed, removed_seq, "threads={threads}");
            assert_eq!(view.alive_set(), reference.alive_set(), "threads={threads}");
            for v in view.alive_vertices() {
                assert_eq!(view.degree(v), reference.degree(v), "threads={threads}");
                assert_eq!(
                    view.intra_degree(v),
                    reference.intra_degree(v),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn matches_decomposition() {
        // The k-core from peeling must equal the vertices with coreness >= k.
        let g = two_cliques();
        let coreness = crate::core_decomposition(&GraphView::new(&g));
        for k in 0..=5u32 {
            let mut view = GraphView::new(&g);
            reduce_to_k_core(&mut view, k);
            for v in g.vertices() {
                assert_eq!(
                    view.is_alive(v),
                    coreness[v.index()] >= k,
                    "k={k} vertex={v}"
                );
            }
        }
    }
}
