//! Dense edge ids and triangle-support computation.
//!
//! The k-truss machinery (needed by the CTC baseline) works per *edge*, so
//! we index each undirected edge `{u, v}` with a dense `u32` id. Because CSR
//! adjacency lists are sorted, the edges `(u, v)` with `v > u` form a
//! contiguous suffix of `u`'s list, which lets `id_of` run in O(log deg)
//! without any hash map.

use bcc_graph::{LabeledGraph, VertexId};

/// Dense ids for the undirected edges of a graph.
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    /// `upper_start[u]` = id of the first edge `(u, v)` with `v > u`.
    upper_start: Vec<u32>,
    /// `(min, max)` endpoints per edge id.
    endpoints: Vec<(VertexId, VertexId)>,
}

impl EdgeIndex {
    /// Builds the index for `graph`.
    pub fn new(graph: &LabeledGraph) -> Self {
        let n = graph.vertex_count();
        let mut upper_start = Vec::with_capacity(n + 1);
        let mut endpoints = Vec::with_capacity(graph.edge_count());
        let mut next_id = 0u32;
        for u in graph.vertices() {
            upper_start.push(next_id);
            for &v in graph.neighbors(u) {
                if v > u {
                    endpoints.push((u, v));
                    next_id += 1;
                }
            }
        }
        upper_start.push(next_id);
        EdgeIndex {
            upper_start,
            endpoints,
        }
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// The `(min, max)` endpoints of edge `id`.
    #[inline]
    pub fn endpoints(&self, id: u32) -> (VertexId, VertexId) {
        self.endpoints[id as usize]
    }

    /// The id of edge `{u, v}`, if present in `graph`.
    pub fn id_of(&self, graph: &LabeledGraph, u: VertexId, v: VertexId) -> Option<u32> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let neighbors = graph.neighbors(a);
        // Edges to vertices > a occupy the sorted suffix of a's list.
        let suffix_start = neighbors.partition_point(|&w| w <= a);
        let suffix = &neighbors[suffix_start..];
        let rank = suffix.binary_search(&b).ok()?;
        Some(self.upper_start[a.index()] + rank as u32)
    }
}

/// Triangle support per edge: `support[e]` = number of triangles containing
/// edge `e` (common neighbors of its endpoints). Sorted-list intersection,
/// O(Σ_e min(deg(u), deg(v))).
pub fn triangle_supports(graph: &LabeledGraph, index: &EdgeIndex) -> Vec<u32> {
    let mut support = vec![0u32; index.edge_count()];
    for id in 0..index.edge_count() as u32 {
        let (u, v) = index.endpoints(id);
        support[id as usize] = common_neighbor_count(graph, u, v);
    }
    support
}

/// Number of common neighbors of `u` and `v` (sorted intersection).
pub fn common_neighbor_count(graph: &LabeledGraph, u: VertexId, v: VertexId) -> u32 {
    let (mut a, mut b) = (graph.neighbors(u).iter(), graph.neighbors(v).iter());
    let (mut x, mut y) = (a.next(), b.next());
    let mut count = 0;
    while let (Some(&p), Some(&q)) = (x, y) {
        match p.cmp(&q) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                count += 1;
                x = a.next();
                y = b.next();
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    fn k4() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.build()
    }

    #[test]
    fn edge_ids_are_dense_and_invertible() {
        let g = k4();
        let index = EdgeIndex::new(&g);
        assert_eq!(index.edge_count(), 6);
        let mut seen = [false; 6];
        for (u, v) in g.edges() {
            let id = index.id_of(&g, u, v).unwrap();
            assert!(!seen[id as usize], "duplicate id");
            seen[id as usize] = true;
            assert_eq!(index.endpoints(id), (u, v));
            // Symmetric lookup.
            assert_eq!(index.id_of(&g, v, u), Some(id));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn missing_edge_has_no_id() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("A");
        let v = b.add_vertex("A");
        let w = b.add_vertex("A");
        b.add_edge(u, v);
        b.add_edge(v, w);
        let g = b.build();
        let index = EdgeIndex::new(&g);
        assert_eq!(index.id_of(&g, u, w), None);
    }

    #[test]
    fn k4_supports() {
        let g = k4();
        let index = EdgeIndex::new(&g);
        let support = triangle_supports(&g, &index);
        assert!(support.iter().all(|&s| s == 2), "every K4 edge is in 2 triangles");
    }

    #[test]
    fn triangle_free_supports_are_zero() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        // 4-cycle: no triangles.
        for i in 0..4 {
            b.add_edge(vs[i], vs[(i + 1) % 4]);
        }
        let g = b.build();
        let index = EdgeIndex::new(&g);
        let support = triangle_supports(&g, &index);
        assert!(support.iter().all(|&s| s == 0));
    }

    #[test]
    fn common_neighbors_counts() {
        let g = k4();
        assert_eq!(common_neighbor_count(&g, VertexId(0), VertexId(1)), 2);
    }
}
