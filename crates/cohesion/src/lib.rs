//! Cohesive-subgraph substrates: k-core and k-truss.
//!
//! The BCC model (Definition 4 of the paper) builds on *k-cores of
//! label-induced subgraphs*; the CTC baseline [Huang et al. 2015] builds on
//! *k-trusses*. This crate provides both, each with:
//!
//! * a full decomposition (coreness per vertex / trussness per edge), and
//! * incremental maintenance under vertex deletions (the peeling cascades of
//!   Algorithm 4 and of the CTC search loop).
//!
//! Core decomposition uses the linear bucket algorithm of Batagelj &
//! Zaversnik [3]; truss decomposition uses support peeling in
//! ascending-support order.
//!
//! ```
//! use bcc_graph::{GraphBuilder, GraphView};
//! use bcc_cohesion::{core_decomposition, reduce_to_k_core};
//!
//! // A triangle with a pendant vertex.
//! let mut b = GraphBuilder::new();
//! let vs: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(vs[u], vs[v]);
//! }
//! let g = b.build();
//!
//! let coreness = core_decomposition(&GraphView::new(&g));
//! assert_eq!(coreness, vec![2, 2, 2, 1]);
//!
//! let mut view = GraphView::new(&g);
//! reduce_to_k_core(&mut view, 2);
//! assert!(!view.is_alive(vs[3]), "the pendant is peeled");
//! ```

pub mod core_decomp;
pub mod core_maintain;
pub mod support;
pub mod truss;

pub use core_decomp::{
    core_decomposition, label_core_decomposition, label_core_decomposition_direct,
    label_core_decomposition_parallel, label_core_decomposition_view_parallel, max_coreness,
};
pub use core_maintain::{
    cascade_label_core, cascade_label_core_from_seeds, reduce_to_k_core, reduce_to_label_core,
    reduce_to_label_core_parallel,
    LabelCoreThresholds,
};
pub use support::{triangle_supports, EdgeIndex};
pub use truss::{truss_decomposition, TrussState};
