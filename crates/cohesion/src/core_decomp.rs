//! k-core decomposition (Definition 1) via bucket peeling.
//!
//! `core_decomposition` treats all live edges equally; this produces the
//! `k_max` column of Table 3 and drives the CTC/PSA baselines.
//! `label_core_decomposition` only counts *same-label* edges, yielding each
//! vertex's coreness inside its own label group — the quantity the BCC model
//! constrains (conditions 2–3 of Definition 4) and the coreness component of
//! the BCindex (Section 6.3). Both run in O(|V| + |E|).

use std::sync::atomic::{AtomicU32, Ordering};

use bcc_graph::{GraphRead, GraphView, VertexId};

/// Which edges a decomposition counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DegreeMode {
    /// Degree within the whole alive subgraph.
    All,
    /// Degree within the alive subgraph induced by the vertex's own label.
    SameLabelOnly,
}

fn decomposition<G: GraphRead>(view: &GraphView<'_, G>, mode: DegreeMode) -> Vec<u32> {
    let n = view.graph().vertex_count();
    let alive: Vec<VertexId> = view.collect_vertices();
    let mut degree = vec![0u32; n];
    for &v in &alive {
        degree[v.index()] = match mode {
            DegreeMode::All => view.degree(v) as u32,
            DegreeMode::SameLabelOnly => view.intra_degree(v) as u32,
        };
    }
    match mode {
        DegreeMode::All => {
            peel(n, &alive, degree, |v, out| out.extend(view.neighbors(v)))
        }
        DegreeMode::SameLabelOnly => {
            peel(n, &alive, degree, |v, out| out.extend(view.same_label_neighbors(v)))
        }
    }
}

/// [`label_core_decomposition`] straight off any [`GraphRead`] source,
/// skipping the [`GraphView`] construction entirely. `GraphView::new` pays
/// an O(|V| + |E|) pass to seed alive/degree/intra-degree state the peeling
/// never mutates — on a full snapshot the only quantity the decomposition
/// needs is each vertex's same-label degree, which this computes in one
/// pass of its own. The parallel index build
/// (`bcc_core::BccIndex::build_with_threads`) used to pay the view setup
/// inside its δ task; it and the sequential build arm now share this
/// view-free path. Bit-identical to `label_core_decomposition` over
/// `GraphView::new(g)` by construction (same vertex order, same neighbor
/// order, same peeling) — pinned by tests here and by the index
/// differential suite.
pub fn label_core_decomposition_direct<G: GraphRead>(g: &G) -> Vec<u32> {
    let n = g.vertex_count();
    let alive: Vec<VertexId> = g.vertices().collect();
    let mut degree = vec![0u32; n];
    for &v in &alive {
        degree[v.index()] = g.same_label_neighbors_iter(v).count() as u32;
    }
    peel(n, &alive, degree, |v, out| out.extend(g.same_label_neighbors_iter(v)))
}

/// The shared Batagelj–Zaversnik peeling engine: `degree` holds each alive
/// vertex's starting degree (whichever edge set the caller counts) and
/// `neighbors` appends exactly those neighbors to the scratch buffer.
fn peel(
    n: usize,
    alive: &[VertexId],
    degree: Vec<u32>,
    mut neighbors: impl FnMut(VertexId, &mut Vec<VertexId>),
) -> Vec<u32> {
    let max_degree = alive.iter().map(|&v| degree[v.index()]).max().unwrap_or(0);

    // Bucket sort vertices by degree (Batagelj–Zaversnik).
    let mut bin_start = vec![0usize; max_degree as usize + 2];
    for &v in alive {
        bin_start[degree[v.index()] as usize + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut position = vec![usize::MAX; n];
    let mut ordered = vec![VertexId(0); alive.len()];
    {
        let mut cursor = bin_start.clone();
        for &v in alive {
            let d = degree[v.index()] as usize;
            position[v.index()] = cursor[d];
            ordered[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    let mut current_degree = degree;
    let mut processed = vec![false; n];
    let mut scratch: Vec<VertexId> = Vec::new();
    for i in 0..ordered.len() {
        let v = ordered[i];
        processed[v.index()] = true;
        coreness[v.index()] = current_degree[v.index()];
        scratch.clear();
        neighbors(v, &mut scratch);
        for u in scratch.drain(..) {
            if processed[u.index()] {
                continue;
            }
            let du = current_degree[u.index()];
            if du > current_degree[v.index()] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket boundary.
                let bucket = du as usize;
                let pu = position[u.index()];
                let first = bin_start[bucket];
                let w = ordered[first];
                if w != u {
                    ordered.swap(first, pu);
                    position[u.index()] = first;
                    position[w.index()] = pu;
                }
                bin_start[bucket] += 1;
                current_degree[u.index()] = du - 1;
            }
        }
    }
    coreness
}

/// `0` means "use every available core" — the same convention as
/// `BccIndex::build_with_threads` and `ServiceConfig::index_threads`.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Below this frontier size a level is expanded on the calling thread: the
/// per-`thread::scope` spawn cost (~tens of µs) dwarfs the work, and small
/// frontiers dominate the tail of every decomposition.
const PARALLEL_FRONTIER_MIN: usize = 256;

/// The level-synchronous parallel peeling engine — the bucket-based
/// counterpart of [`peel`].
///
/// Batagelj–Zaversnik peels one vertex at a time in degree order; its output,
/// the core number, is a property of the graph alone, independent of peeling
/// order. This engine exploits that: for k = 0, 1, … it repeatedly removes
/// *every* remaining vertex of degree ≤ k in rounds (assigning coreness k),
/// decrementing neighbor degrees with a CAS loop that clamps at k — exactly
/// the clamp `peel` applies via its `du > current_degree[v]` guard. Each
/// round's frontier is expanded in parallel over contiguous chunks, one per
/// worker, and the per-worker discovery buffers are concatenated in worker
/// index order, so even the *internal* traversal order is a pure function of
/// the input. The returned coreness vector is bit-identical to [`peel`]'s by
/// the uniqueness of core numbers (pinned by tests and by the index
/// differential suite).
///
/// Work is O(|V| + |E|) like the sequential peel: every edge is relaxed at
/// most twice and every lazy re-bucket entry is paid for by a decrement.
fn peel_parallel(
    n: usize,
    alive: &[VertexId],
    degree: &[AtomicU32],
    threads: usize,
    neighbors: impl Fn(VertexId, &mut Vec<VertexId>) + Sync,
) -> Vec<u32> {
    let max_degree =
        alive.iter().map(|&v| degree[v.index()].load(Ordering::Relaxed)).max().unwrap_or(0);

    // Bucket vertices by starting degree. Buckets are *lazy*: a decrement to
    // d > k re-files the vertex under bucket d without unfiling the stale
    // entry; the pop filter below (`unprocessed && degree == k`) discards
    // stale entries. Every unprocessed vertex holds an entry at its current
    // degree, so no vertex is ever missed.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_degree as usize + 1];
    for &v in alive {
        buckets[degree[v.index()].load(Ordering::Relaxed) as usize].push(v);
    }

    let mut coreness = vec![0u32; n];
    let mut processed = vec![false; n];
    let mut remaining = alive.len();
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut scratch: Vec<VertexId> = Vec::new();

    for k in 0..=max_degree {
        if remaining == 0 {
            break;
        }
        // Invariant at level start: every unprocessed vertex has degree ≥ k
        // (anything that dropped to ≤ j was consumed at level j < k), so the
        // filter `degree == k` selects exactly this level's seeds.
        frontier.clear();
        let mut seeds = std::mem::take(&mut buckets[k as usize]);
        frontier.extend(
            seeds
                .drain(..)
                .filter(|v| !processed[v.index()] && degree[v.index()].load(Ordering::Relaxed) == k),
        );

        while !frontier.is_empty() {
            for &v in &frontier {
                processed[v.index()] = true;
                coreness[v.index()] = k;
            }
            remaining -= frontier.len();

            // Expand the round: decrement unprocessed neighbors, clamping at
            // k. The worker whose CAS moves a neighbor from k+1 to k owns its
            // enqueue (exactly-once); drops that stay above k are re-filed.
            let workers = if frontier.len() < PARALLEL_FRONTIER_MIN { 1 } else { threads };
            let mut next: Vec<VertexId> = Vec::new();
            let mut refile: Vec<(VertexId, u32)> = Vec::new();
            if workers <= 1 {
                expand_chunk(&frontier, degree, k, &neighbors, &mut scratch, &mut next, &mut refile);
            } else {
                let chunk = frontier.len().div_ceil(workers);
                let neighbors = &neighbors;
                let parts: Vec<PeelChunkOut> =
                    std::thread::scope(|s| {
                        let handles: Vec<_> = frontier
                            .chunks(chunk)
                            .map(|slice| {
                                s.spawn(move || {
                                    let mut local_scratch = Vec::new();
                                    let mut local_next = Vec::new();
                                    let mut local_refile = Vec::new();
                                    expand_chunk(
                                        slice,
                                        degree,
                                        k,
                                        &neighbors,
                                        &mut local_scratch,
                                        &mut local_next,
                                        &mut local_refile,
                                    );
                                    (local_next, local_refile)
                                })
                            })
                            .collect();
                        // Join in spawn (= chunk) order: the merged buffers
                        // are deterministic for a given input and chunking.
                        handles.into_iter().map(|h| h.join().expect("peel worker")).collect()
                    });
                for (local_next, local_refile) in parts {
                    next.extend(local_next);
                    refile.extend(local_refile);
                }
            }
            for (v, d) in refile {
                buckets[d as usize].push(v);
            }
            frontier = next;
        }
    }
    coreness
}

/// One peel worker's output: its share of the next frontier (vertices
/// dropped to exactly `k`) and the (vertex, new-degree) drops that stayed
/// above `k`, to be re-filed into their buckets.
type PeelChunkOut = (Vec<VertexId>, Vec<(VertexId, u32)>);

/// One worker's share of a peeling round: relax every neighbor of every
/// frontier vertex in `slice`. Neighbors already at ≤ k (processed earlier,
/// processed this round, or sharing the frontier) are skipped by the clamp —
/// no `processed` lookup is needed.
fn expand_chunk(
    slice: &[VertexId],
    degree: &[AtomicU32],
    k: u32,
    neighbors: &(impl Fn(VertexId, &mut Vec<VertexId>) + Sync),
    scratch: &mut Vec<VertexId>,
    next: &mut Vec<VertexId>,
    refile: &mut Vec<(VertexId, u32)>,
) {
    for &v in slice {
        scratch.clear();
        neighbors(v, scratch);
        for &u in scratch.iter() {
            let slot = &degree[u.index()];
            let mut cur = slot.load(Ordering::Relaxed);
            loop {
                if cur <= k {
                    break;
                }
                match slot.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        if cur == k + 1 {
                            next.push(u);
                        } else {
                            refile.push((u, cur - 1));
                        }
                        break;
                    }
                    Err(seen) => cur = seen,
                }
            }
        }
    }
}

/// [`label_core_decomposition_direct`] with the bucketed parallel engine:
/// same-label coreness straight off any [`GraphRead`] source, peeled
/// level-synchronously across `threads` workers (`0` = all cores). The
/// offline index build's δ task calls this — PR 5 left that task as the
/// build's sequential critical path; here the decomposition itself scales.
/// Output is bit-identical to the sequential path at any thread count.
pub fn label_core_decomposition_parallel<G: GraphRead + Sync>(g: &G, threads: usize) -> Vec<u32> {
    let threads = resolve_threads(threads);
    if threads <= 1 {
        return label_core_decomposition_direct(g);
    }
    let n = g.vertex_count();
    let alive: Vec<VertexId> = g.vertices().collect();
    let degree: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // Same-label degree needs a neighbor scan per vertex — the one O(|E|)
    // setup pass — so fan it out over contiguous chunks of the alive list.
    let chunk = alive.len().div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for slice in alive.chunks(chunk) {
            let degree = &degree;
            s.spawn(move || {
                for &v in slice {
                    let d = g.same_label_neighbors_iter(v).count() as u32;
                    degree[v.index()].store(d, Ordering::Relaxed);
                }
            });
        }
    });
    peel_parallel(n, &alive, &degree, threads, |v, out| {
        out.extend(g.same_label_neighbors_iter(v))
    })
}

/// Same-label coreness of a (possibly partially deleted) [`GraphView`],
/// peeled in parallel. This is the query-time entry point: `find_g0`'s
/// label-core reduction filters the view by these core numbers instead of
/// cascading removals one vertex at a time.
pub fn label_core_decomposition_view_parallel<G: GraphRead + Sync>(
    view: &GraphView<'_, G>,
    threads: usize,
) -> Vec<u32> {
    let threads = resolve_threads(threads);
    if threads <= 1 {
        return label_core_decomposition(view);
    }
    let n = view.graph().vertex_count();
    let alive: Vec<VertexId> = view.collect_vertices();
    let degree: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    for &v in &alive {
        // The view maintains intra-degree incrementally: O(1) per vertex.
        degree[v.index()].store(view.intra_degree(v) as u32, Ordering::Relaxed);
    }
    peel_parallel(n, &alive, &degree, threads, |v, out| {
        out.extend(view.same_label_neighbors(v))
    })
}

/// Coreness of every alive vertex counting all live edges; dead vertices get
/// coreness 0.
pub fn core_decomposition<G: GraphRead>(view: &GraphView<'_, G>) -> Vec<u32> {
    decomposition(view, DegreeMode::All)
}

/// Coreness of every alive vertex counting only same-label edges (coreness
/// inside the vertex's label group).
pub fn label_core_decomposition<G: GraphRead>(view: &GraphView<'_, G>) -> Vec<u32> {
    decomposition(view, DegreeMode::SameLabelOnly)
}

/// The maximum coreness in the view (`k_max` of Table 3).
pub fn max_coreness<G: GraphRead>(view: &GraphView<'_, G>) -> u32 {
    core_decomposition(view).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    fn clique(n: usize, label: &str) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex(label)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.build()
    }

    #[test]
    fn clique_coreness() {
        let g = clique(5, "A");
        let view = GraphView::new(&g);
        let core = core_decomposition(&view);
        assert!(core.iter().all(|&c| c == 4));
        assert_eq!(max_coreness(&view), 4);
    }

    #[test]
    fn path_coreness_is_one() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let core = core_decomposition(&GraphView::new(&g));
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_pendant() {
        // 4-clique + pendant vertex: clique members have coreness 3, pendant 1.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.add_edge(vs[0], vs[4]);
        let g = b.build();
        let core = core_decomposition(&GraphView::new(&g));
        assert_eq!(core[4], 1);
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
    }

    #[test]
    fn label_core_ignores_cross_edges() {
        // Two 3-cliques with different labels fully cross-connected: label
        // coreness stays 2 while plain coreness is 5.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_vertex("B")).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                b.add_edge(a[i], a[j]);
                b.add_edge(c[i], c[j]);
            }
        }
        for &u in &a {
            for &v in &c {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let label_core = label_core_decomposition(&view);
        assert!(label_core.iter().all(|&k| k == 2));
        let core = core_decomposition(&view);
        assert!(core.iter().all(|&k| k == 5));
    }

    #[test]
    fn respects_view_deletions() {
        let g = clique(5, "A");
        let mut view = GraphView::new(&g);
        view.remove_vertex(bcc_graph::VertexId(0));
        let core = core_decomposition(&view);
        assert_eq!(core[0], 0, "dead vertices report coreness 0");
        assert!(core[1..].iter().all(|&c| c == 3));
    }

    #[test]
    fn direct_label_core_matches_view_path() {
        // The view-free path must be bit-identical to peeling a fresh full
        // view — the parallel index build relies on this.
        for (n, seed_edges) in [
            (6usize, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]),
            (8, vec![(0, 1), (0, 2), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (4, 7), (0, 4)]),
        ] {
            let mut b = GraphBuilder::new();
            let vs: Vec<_> = (0..n)
                .map(|i| b.add_vertex(if i % 2 == 0 { "A" } else { "B" }))
                .collect();
            for (u, v) in seed_edges {
                b.add_edge(vs[u], vs[v]);
            }
            let g = b.build();
            assert_eq!(
                label_core_decomposition_direct(&g),
                label_core_decomposition(&GraphView::new(&g)),
            );
        }
    }

    /// Deterministic pseudo-random labeled graph (xorshift64*), dense enough
    /// to produce a spread of core numbers and several labels.
    fn random_graph(n: usize, labels: usize, edge_prob_per_mille: u64, seed: u64) -> LabeledGraph {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        let names: Vec<String> = (0..labels).map(|i| format!("L{i}")).collect();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(&names[i % labels])).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if next() % 1000 < edge_prob_per_mille {
                    b.add_edge(vs[i], vs[j]);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_label_core_is_bit_identical_at_every_thread_count() {
        for (n, labels, per_mille, seed) in
            [(60, 2, 200, 0x1D3), (320, 3, 30, 0xBEEF), (700, 4, 15, 0xCAFE)]
        {
            let g = random_graph(n, labels, per_mille, seed);
            let reference = label_core_decomposition_direct(&g);
            for threads in [1usize, 2, 3, 7, 0] {
                assert_eq!(
                    label_core_decomposition_parallel(&g, threads),
                    reference,
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_view_label_core_matches_sequential_after_deletions() {
        let g = random_graph(300, 3, 40, 0x5EED);
        let mut view = GraphView::new(&g);
        // Knock out a deterministic scatter of vertices so the view path is
        // exercised on a genuinely partial graph.
        for i in (0..300u32).step_by(7) {
            view.remove_vertex(bcc_graph::VertexId(i));
        }
        let reference = label_core_decomposition(&view);
        for threads in [1usize, 2, 3, 7, 0] {
            assert_eq!(
                label_core_decomposition_view_parallel(&view, threads),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_peel_handles_degenerate_shapes() {
        // Empty graph, isolated vertices, and a single clique — the level
        // engine's edges: zero alive, zero max-degree, one giant bucket.
        let empty = GraphBuilder::new().build();
        assert_eq!(label_core_decomposition_parallel(&empty, 4), Vec::<u32>::new());

        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            b.add_vertex("A");
        }
        let isolated = b.build();
        assert_eq!(label_core_decomposition_parallel(&isolated, 4), vec![0; 5]);

        let g = clique(9, "A");
        assert_eq!(
            label_core_decomposition_parallel(&g, 3),
            label_core_decomposition_direct(&g)
        );
    }

    #[test]
    fn coreness_is_monotone_under_deletion() {
        // Property sanity: deleting a vertex never increases anyone's coreness.
        let g = clique(6, "A");
        let mut view = GraphView::new(&g);
        let before = core_decomposition(&view);
        view.remove_vertex(bcc_graph::VertexId(3));
        let after = core_decomposition(&view);
        for i in 0..6 {
            assert!(after[i] <= before[i]);
        }
    }
}
