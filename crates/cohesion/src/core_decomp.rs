//! k-core decomposition (Definition 1) via bucket peeling.
//!
//! `core_decomposition` treats all live edges equally; this produces the
//! `k_max` column of Table 3 and drives the CTC/PSA baselines.
//! `label_core_decomposition` only counts *same-label* edges, yielding each
//! vertex's coreness inside its own label group — the quantity the BCC model
//! constrains (conditions 2–3 of Definition 4) and the coreness component of
//! the BCindex (Section 6.3). Both run in O(|V| + |E|).

use bcc_graph::{GraphRead, GraphView, VertexId};

/// Which edges a decomposition counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DegreeMode {
    /// Degree within the whole alive subgraph.
    All,
    /// Degree within the alive subgraph induced by the vertex's own label.
    SameLabelOnly,
}

fn decomposition<G: GraphRead>(view: &GraphView<'_, G>, mode: DegreeMode) -> Vec<u32> {
    let n = view.graph().vertex_count();
    let alive: Vec<VertexId> = view.collect_vertices();
    let mut degree = vec![0u32; n];
    for &v in &alive {
        degree[v.index()] = match mode {
            DegreeMode::All => view.degree(v) as u32,
            DegreeMode::SameLabelOnly => view.intra_degree(v) as u32,
        };
    }
    match mode {
        DegreeMode::All => {
            peel(n, &alive, degree, |v, out| out.extend(view.neighbors(v)))
        }
        DegreeMode::SameLabelOnly => {
            peel(n, &alive, degree, |v, out| out.extend(view.same_label_neighbors(v)))
        }
    }
}

/// [`label_core_decomposition`] straight off any [`GraphRead`] source,
/// skipping the [`GraphView`] construction entirely. `GraphView::new` pays
/// an O(|V| + |E|) pass to seed alive/degree/intra-degree state the peeling
/// never mutates — on a full snapshot the only quantity the decomposition
/// needs is each vertex's same-label degree, which this computes in one
/// pass of its own. The parallel index build
/// (`bcc_core::BccIndex::build_with_threads`) used to pay the view setup
/// inside its δ task; it and the sequential build arm now share this
/// view-free path. Bit-identical to `label_core_decomposition` over
/// `GraphView::new(g)` by construction (same vertex order, same neighbor
/// order, same peeling) — pinned by tests here and by the index
/// differential suite.
pub fn label_core_decomposition_direct<G: GraphRead>(g: &G) -> Vec<u32> {
    let n = g.vertex_count();
    let alive: Vec<VertexId> = g.vertices().collect();
    let mut degree = vec![0u32; n];
    for &v in &alive {
        degree[v.index()] = g.same_label_neighbors_iter(v).count() as u32;
    }
    peel(n, &alive, degree, |v, out| out.extend(g.same_label_neighbors_iter(v)))
}

/// The shared Batagelj–Zaversnik peeling engine: `degree` holds each alive
/// vertex's starting degree (whichever edge set the caller counts) and
/// `neighbors` appends exactly those neighbors to the scratch buffer.
fn peel(
    n: usize,
    alive: &[VertexId],
    degree: Vec<u32>,
    mut neighbors: impl FnMut(VertexId, &mut Vec<VertexId>),
) -> Vec<u32> {
    let max_degree = alive.iter().map(|&v| degree[v.index()]).max().unwrap_or(0);

    // Bucket sort vertices by degree (Batagelj–Zaversnik).
    let mut bin_start = vec![0usize; max_degree as usize + 2];
    for &v in alive {
        bin_start[degree[v.index()] as usize + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut position = vec![usize::MAX; n];
    let mut ordered = vec![VertexId(0); alive.len()];
    {
        let mut cursor = bin_start.clone();
        for &v in alive {
            let d = degree[v.index()] as usize;
            position[v.index()] = cursor[d];
            ordered[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    let mut current_degree = degree;
    let mut processed = vec![false; n];
    let mut scratch: Vec<VertexId> = Vec::new();
    for i in 0..ordered.len() {
        let v = ordered[i];
        processed[v.index()] = true;
        coreness[v.index()] = current_degree[v.index()];
        scratch.clear();
        neighbors(v, &mut scratch);
        for u in scratch.drain(..) {
            if processed[u.index()] {
                continue;
            }
            let du = current_degree[u.index()];
            if du > current_degree[v.index()] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket boundary.
                let bucket = du as usize;
                let pu = position[u.index()];
                let first = bin_start[bucket];
                let w = ordered[first];
                if w != u {
                    ordered.swap(first, pu);
                    position[u.index()] = first;
                    position[w.index()] = pu;
                }
                bin_start[bucket] += 1;
                current_degree[u.index()] = du - 1;
            }
        }
    }
    coreness
}

/// Coreness of every alive vertex counting all live edges; dead vertices get
/// coreness 0.
pub fn core_decomposition<G: GraphRead>(view: &GraphView<'_, G>) -> Vec<u32> {
    decomposition(view, DegreeMode::All)
}

/// Coreness of every alive vertex counting only same-label edges (coreness
/// inside the vertex's label group).
pub fn label_core_decomposition<G: GraphRead>(view: &GraphView<'_, G>) -> Vec<u32> {
    decomposition(view, DegreeMode::SameLabelOnly)
}

/// The maximum coreness in the view (`k_max` of Table 3).
pub fn max_coreness<G: GraphRead>(view: &GraphView<'_, G>) -> u32 {
    core_decomposition(view).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    fn clique(n: usize, label: &str) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex(label)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.build()
    }

    #[test]
    fn clique_coreness() {
        let g = clique(5, "A");
        let view = GraphView::new(&g);
        let core = core_decomposition(&view);
        assert!(core.iter().all(|&c| c == 4));
        assert_eq!(max_coreness(&view), 4);
    }

    #[test]
    fn path_coreness_is_one() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let core = core_decomposition(&GraphView::new(&g));
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_pendant() {
        // 4-clique + pendant vertex: clique members have coreness 3, pendant 1.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.add_edge(vs[0], vs[4]);
        let g = b.build();
        let core = core_decomposition(&GraphView::new(&g));
        assert_eq!(core[4], 1);
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
    }

    #[test]
    fn label_core_ignores_cross_edges() {
        // Two 3-cliques with different labels fully cross-connected: label
        // coreness stays 2 while plain coreness is 5.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_vertex("B")).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                b.add_edge(a[i], a[j]);
                b.add_edge(c[i], c[j]);
            }
        }
        for &u in &a {
            for &v in &c {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let label_core = label_core_decomposition(&view);
        assert!(label_core.iter().all(|&k| k == 2));
        let core = core_decomposition(&view);
        assert!(core.iter().all(|&k| k == 5));
    }

    #[test]
    fn respects_view_deletions() {
        let g = clique(5, "A");
        let mut view = GraphView::new(&g);
        view.remove_vertex(bcc_graph::VertexId(0));
        let core = core_decomposition(&view);
        assert_eq!(core[0], 0, "dead vertices report coreness 0");
        assert!(core[1..].iter().all(|&c| c == 3));
    }

    #[test]
    fn direct_label_core_matches_view_path() {
        // The view-free path must be bit-identical to peeling a fresh full
        // view — the parallel index build relies on this.
        for (n, seed_edges) in [
            (6usize, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]),
            (8, vec![(0, 1), (0, 2), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (4, 7), (0, 4)]),
        ] {
            let mut b = GraphBuilder::new();
            let vs: Vec<_> = (0..n)
                .map(|i| b.add_vertex(if i % 2 == 0 { "A" } else { "B" }))
                .collect();
            for (u, v) in seed_edges {
                b.add_edge(vs[u], vs[v]);
            }
            let g = b.build();
            assert_eq!(
                label_core_decomposition_direct(&g),
                label_core_decomposition(&GraphView::new(&g)),
            );
        }
    }

    #[test]
    fn coreness_is_monotone_under_deletion() {
        // Property sanity: deleting a vertex never increases anyone's coreness.
        let g = clique(6, "A");
        let mut view = GraphView::new(&g);
        let before = core_decomposition(&view);
        view.remove_vertex(bcc_graph::VertexId(3));
        let after = core_decomposition(&view);
        for i in 0..6 {
            assert!(after[i] <= before[i]);
        }
    }
}
