//! k-core decomposition (Definition 1) via bucket peeling.
//!
//! `core_decomposition` treats all live edges equally; this produces the
//! `k_max` column of Table 3 and drives the CTC/PSA baselines.
//! `label_core_decomposition` only counts *same-label* edges, yielding each
//! vertex's coreness inside its own label group — the quantity the BCC model
//! constrains (conditions 2–3 of Definition 4) and the coreness component of
//! the BCindex (Section 6.3). Both run in O(|V| + |E|).

use bcc_graph::{GraphRead, GraphView, VertexId};

/// Which edges a decomposition counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DegreeMode {
    /// Degree within the whole alive subgraph.
    All,
    /// Degree within the alive subgraph induced by the vertex's own label.
    SameLabelOnly,
}

fn decomposition<G: GraphRead>(view: &GraphView<'_, G>, mode: DegreeMode) -> Vec<u32> {
    let n = view.graph().vertex_count();
    let mut degree = vec![0u32; n];
    let mut max_degree = 0u32;
    let alive: Vec<VertexId> = view.collect_vertices();
    for &v in &alive {
        let d = match mode {
            DegreeMode::All => view.degree(v) as u32,
            DegreeMode::SameLabelOnly => view.intra_degree(v) as u32,
        };
        degree[v.index()] = d;
        max_degree = max_degree.max(d);
    }

    // Bucket sort vertices by degree (Batagelj–Zaversnik).
    let mut bin_start = vec![0usize; max_degree as usize + 2];
    for &v in &alive {
        bin_start[degree[v.index()] as usize + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut position = vec![usize::MAX; n];
    let mut ordered = vec![VertexId(0); alive.len()];
    {
        let mut cursor = bin_start.clone();
        for &v in &alive {
            let d = degree[v.index()] as usize;
            position[v.index()] = cursor[d];
            ordered[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    let mut current_degree = degree.clone();
    let mut processed = vec![false; n];
    for i in 0..ordered.len() {
        let v = ordered[i];
        processed[v.index()] = true;
        coreness[v.index()] = current_degree[v.index()];
        let neighbors: Vec<VertexId> = match mode {
            DegreeMode::All => view.neighbors(v).collect(),
            DegreeMode::SameLabelOnly => view.same_label_neighbors(v).collect(),
        };
        for u in neighbors {
            if processed[u.index()] {
                continue;
            }
            let du = current_degree[u.index()];
            if du > current_degree[v.index()] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket boundary.
                let bucket = du as usize;
                let pu = position[u.index()];
                let first = bin_start[bucket];
                let w = ordered[first];
                if w != u {
                    ordered.swap(first, pu);
                    position[u.index()] = first;
                    position[w.index()] = pu;
                }
                bin_start[bucket] += 1;
                current_degree[u.index()] = du - 1;
            }
        }
    }
    coreness
}

/// Coreness of every alive vertex counting all live edges; dead vertices get
/// coreness 0.
pub fn core_decomposition<G: GraphRead>(view: &GraphView<'_, G>) -> Vec<u32> {
    decomposition(view, DegreeMode::All)
}

/// Coreness of every alive vertex counting only same-label edges (coreness
/// inside the vertex's label group).
pub fn label_core_decomposition<G: GraphRead>(view: &GraphView<'_, G>) -> Vec<u32> {
    decomposition(view, DegreeMode::SameLabelOnly)
}

/// The maximum coreness in the view (`k_max` of Table 3).
pub fn max_coreness<G: GraphRead>(view: &GraphView<'_, G>) -> u32 {
    core_decomposition(view).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    fn clique(n: usize, label: &str) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex(label)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.build()
    }

    #[test]
    fn clique_coreness() {
        let g = clique(5, "A");
        let view = GraphView::new(&g);
        let core = core_decomposition(&view);
        assert!(core.iter().all(|&c| c == 4));
        assert_eq!(max_coreness(&view), 4);
    }

    #[test]
    fn path_coreness_is_one() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let core = core_decomposition(&GraphView::new(&g));
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn clique_with_pendant() {
        // 4-clique + pendant vertex: clique members have coreness 3, pendant 1.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(vs[i], vs[j]);
            }
        }
        b.add_edge(vs[0], vs[4]);
        let g = b.build();
        let core = core_decomposition(&GraphView::new(&g));
        assert_eq!(core[4], 1);
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
    }

    #[test]
    fn label_core_ignores_cross_edges() {
        // Two 3-cliques with different labels fully cross-connected: label
        // coreness stays 2 while plain coreness is 5.
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_vertex("B")).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                b.add_edge(a[i], a[j]);
                b.add_edge(c[i], c[j]);
            }
        }
        for &u in &a {
            for &v in &c {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let label_core = label_core_decomposition(&view);
        assert!(label_core.iter().all(|&k| k == 2));
        let core = core_decomposition(&view);
        assert!(core.iter().all(|&k| k == 5));
    }

    #[test]
    fn respects_view_deletions() {
        let g = clique(5, "A");
        let mut view = GraphView::new(&g);
        view.remove_vertex(bcc_graph::VertexId(0));
        let core = core_decomposition(&view);
        assert_eq!(core[0], 0, "dead vertices report coreness 0");
        assert!(core[1..].iter().all(|&c| c == 3));
    }

    #[test]
    fn coreness_is_monotone_under_deletion() {
        // Property sanity: deleting a vertex never increases anyone's coreness.
        let g = clique(6, "A");
        let mut view = GraphView::new(&g);
        let before = core_decomposition(&view);
        view.remove_vertex(bcc_graph::VertexId(3));
        let after = core_decomposition(&view);
        for i in 0..6 {
            assert!(after[i] <= before[i]);
        }
    }
}
