//! Cross-crate integration tests: the full search pipeline on generated
//! networks, validity of every method's answers, and the approximation
//! property of Theorem 3.

use bcc::prelude::*;

fn planted(communities: usize, seed: u64) -> PlantedNetwork {
    PlantedNetwork::generate(PlantedConfig {
        communities,
        community_size: (18, 36),
        seed,
        ..Default::default()
    })
}

fn default_params(index: &BccIndex, q: &BccQuery) -> BccParams {
    BccParams {
        k1: index.coreness(q.ql),
        k2: index.coreness(q.qr),
        b: 1,
    }
}

#[test]
fn every_method_returns_valid_bccs_on_planted_networks() {
    let net = planted(12, 101);
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        15,
        bcc::datasets::QueryConstraints::default(),
        3,
    );
    assert!(queries.len() >= 5, "workload too small: {}", queries.len());
    // The default parameters take k from *global* label coreness, which
    // noise chords can push above what any community sustains — for such
    // queries no BCC exists and `Err` is the correct answer. So: every
    // success must be a valid BCC, all three methods must agree on
    // success/failure, and a majority of queries must succeed (the workload
    // isn't allowed to go vacuous).
    let mut successes = 0usize;
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        let outcomes = [
            ("online", OnlineBcc::default().search(&net.graph, &pair, &params)),
            ("lp", LpBcc::default().search(&net.graph, &pair, &params)),
            ("l2p", L2pBcc::default().search(&net.graph, &index, &pair, &params)),
        ];
        let ok_count = outcomes.iter().filter(|(_, r)| r.is_ok()).count();
        assert!(
            ok_count == 0 || ok_count == outcomes.len(),
            "methods disagree on feasibility of {pair:?}: {:?}",
            outcomes
                .iter()
                .map(|(name, r)| (*name, r.is_ok()))
                .collect::<Vec<_>>()
        );
        for (name, result) in outcomes {
            if let Ok(result) = result {
                let view =
                    GraphView::from_vertices(&net.graph, result.community.iter().copied());
                assert!(
                    bcc::core::is_valid_bcc(&view, &pair, &params),
                    "{name} returned an invalid BCC for {pair:?}"
                );
            }
        }
        if ok_count > 0 {
            successes += 1;
        }
    }
    assert!(
        successes * 2 >= queries.len(),
        "only {successes}/{} queries found a community",
        queries.len()
    );
}

#[test]
fn online_and_lp_produce_identical_answers() {
    // LP's fast strategies change *how* the candidate is maintained, never
    // the candidate itself — the peel order and answers must match exactly.
    let net = planted(10, 55);
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        20,
        bcc::datasets::QueryConstraints {
            degree_rank: 0,
            inter_distance: None,
        },
        9,
    );
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        let online = OnlineBcc::default().search(&net.graph, &pair, &params);
        let lp = LpBcc::default().search(&net.graph, &pair, &params);
        match (online, lp) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.community, b.community, "answers diverged for {pair:?}");
                assert_eq!(a.query_distance, b.query_distance);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("online = {a:?} but lp = {b:?} for {pair:?}"),
        }
    }
}

#[test]
fn diameter_within_twice_query_distance() {
    // Theorem 3's key inequality: diam(O) ≤ 2·dist_O(O, Q). Check the
    // diameter of every returned community against its query distance
    // measured inside the community.
    let net = planted(10, 77);
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        10,
        bcc::datasets::QueryConstraints::default(),
        5,
    );
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        if let Ok(result) = OnlineBcc::default().search(&net.graph, &pair, &params) {
            let view = GraphView::from_vertices(&net.graph, result.community.iter().copied());
            let qd = bcc::graph::traversal::QueryDistances::compute(
                &view,
                &[pair.ql, pair.qr],
            )
            .graph_query_distance(&view);
            let diameter = bcc::graph::traversal::diameter_exact(&view);
            assert!(
                diameter <= 2 * qd,
                "diam {diameter} > 2 × query distance {qd} for {pair:?}"
            );
        }
    }
}

#[test]
fn bcc_beats_label_blind_baselines_on_cross_group_truth() {
    // The headline Figure 4 claim at test scale: averaged F1 of LP-BCC
    // exceeds both PSA and CTC on a planted cross-group network.
    let net = planted(15, 202);
    let index = BccIndex::build(&net.graph);
    let ctc_index = CtcSearch::default();
    let truss = bcc::baselines::CtcIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        25,
        bcc::datasets::QueryConstraints::default(),
        11,
    );
    let mut f1 = std::collections::HashMap::from([("bcc", 0.0), ("ctc", 0.0), ("psa", 0.0)]);
    for q in &queries {
        let truth = net.community(q.community);
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        if let Ok(r) = LpBcc::default().search(&net.graph, &pair, &params) {
            *f1.get_mut("bcc").unwrap() += f1_score(&r.community, truth);
        }
        if let Ok(r) = ctc_index.search(&net.graph, &truss, &q.vertices) {
            *f1.get_mut("ctc").unwrap() += f1_score(&r.community, truth);
        }
        if let Ok(r) = PsaSearch::default().search(&net.graph, &q.vertices) {
            *f1.get_mut("psa").unwrap() += f1_score(&r.community, truth);
        }
    }
    assert!(
        f1["bcc"] > f1["ctc"],
        "LP-BCC ({}) should beat CTC ({})",
        f1["bcc"],
        f1["ctc"]
    );
    // PSA recovers planted communities near-perfectly here because they are
    // also excellent label-blind k-cores, while the BCC objective minimizes
    // query distance (shrinking the community below the full ground truth),
    // so "on par" means within 10% — the discriminating claim is the CTC
    // comparison above.
    assert!(
        f1["bcc"] > f1["psa"] * 0.9,
        "LP-BCC ({}) should be at least on par with PSA ({})",
        f1["bcc"],
        f1["psa"]
    );
}

#[test]
fn graph_io_roundtrip_preserves_search_results() {
    let net = planted(6, 31);
    let mut buf = Vec::new();
    bcc::graph::io::write_graph(&net.graph, &mut buf).unwrap();
    let reloaded = bcc::graph::io::read_graph(&buf[..]).unwrap();
    assert_eq!(reloaded.vertex_count(), net.graph.vertex_count());
    assert_eq!(reloaded.edge_count(), net.graph.edge_count());

    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        5,
        bcc::datasets::QueryConstraints::default(),
        1,
    );
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        let original = OnlineBcc::default().search(&net.graph, &pair, &params);
        let reread = OnlineBcc::default().search(&reloaded, &pair, &params);
        match (original, reread) {
            (Ok(a), Ok(b)) => assert_eq!(a.community, b.community),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("io roundtrip changed the result: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn mbcc_reduces_to_bcc_for_two_labels() {
    let net = planted(8, 404);
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        8,
        bcc::datasets::QueryConstraints::default(),
        13,
    );
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        let two = LpBcc::default().search(&net.graph, &pair, &params);
        let multi = MultiLabelBcc::default().search(
            &net.graph,
            Some(&index),
            &MbccQuery::new(q.vertices.clone()),
            &bcc::core::MbccParams::new(vec![params.k1, params.k2], params.b),
        );
        match (two, multi) {
            (Ok(a), Ok(b)) => assert_eq!(a.community, b.community),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("m=2 mBCC diverged from BCC: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn reported_leaders_certify_the_butterfly_condition() {
    let net = planted(10, 606);
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        10,
        bcc::datasets::QueryConstraints::default(),
        21,
    );
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        if let Ok(result) = LpBcc::default().search(&net.graph, &pair, &params) {
            assert_eq!(result.leaders.len(), 2);
            let view = GraphView::from_vertices(&net.graph, result.community.iter().copied());
            let cross = BipartiteCross::new(
                net.graph.label(pair.ql),
                net.graph.label(pair.qr),
            );
            let counts = ButterflyCounts::compute(&view, cross);
            for (leader, query_vertex) in result.leaders.iter().zip([pair.ql, pair.qr]) {
                assert!(result.contains(leader), "leader must be a member");
                assert_eq!(
                    net.graph.label(*leader),
                    net.graph.label(query_vertex),
                    "leaders are reported in query-label order"
                );
                assert!(
                    counts.chi(*leader) >= params.b,
                    "leader χ = {} below b = {}",
                    counts.chi(*leader),
                    params.b
                );
            }
        }
    }
}

#[test]
fn mbcc_answers_are_valid_mbccs() {
    let net = PlantedNetwork::generate(PlantedConfig {
        communities: 8,
        community_size: (30, 40),
        groups_per_community: 3,
        label_pool: 6,
        seed: 777,
        ..Default::default()
    });
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::mbcc_queries(&net, 3, 8, 4);
    assert!(!queries.is_empty());
    for q in &queries {
        let query = MbccQuery::new(q.vertices.clone());
        let params = bcc::core::MbccParams {
            ks: q.vertices.iter().map(|&v| index.coreness(v).max(1)).collect(),
            b: 1,
        };
        if let Ok(result) = MultiLabelBcc::default().search(&net.graph, Some(&index), &query, &params) {
            let view = GraphView::from_vertices(&net.graph, result.community.iter().copied());
            assert!(
                bcc::core::is_valid_mbcc(&view, &query, &params),
                "invalid mBCC for {:?}",
                q.vertices
            );
        }
    }
}

#[test]
fn search_stats_are_plausible() {
    let net = planted(8, 909);
    let index = BccIndex::build(&net.graph);
    let queries = bcc::datasets::random_community_queries(
        &net,
        5,
        bcc::datasets::QueryConstraints::default(),
        17,
    );
    for q in &queries {
        let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
        let params = default_params(&index, &pair);
        if let Ok(result) = LpBcc::default().search(&net.graph, &pair, &params) {
            let stats: &SearchStats = &result.stats;
            assert!(stats.butterfly_countings >= 1, "G0 always counts once");
            assert!(stats.time_total >= stats.time_butterfly_counting);
            assert_eq!(stats.iterations as usize, result.iterations);
        }
    }
}
