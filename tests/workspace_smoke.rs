//! Workspace-wiring smoke test: exercises the `examples/quickstart.rs` flow
//! end-to-end **through the `bcc::prelude` facade re-exports only**, so a
//! missing re-export or broken cross-crate wiring fails here even if the
//! member crates' own tests still pass.

use bcc::prelude::*;

/// The quickstart graph: two dense 4-member teams plus a bridging butterfly
/// between `{se0, se1}` and `{ui0, ui1}` (same construction as the crate
/// docs of `src/lib.rs`).
fn quickstart_graph() -> (LabeledGraph, Vec<VertexId>, Vec<VertexId>) {
    let mut b = GraphBuilder::new();
    let se: Vec<_> = (0..4).map(|_| b.add_vertex("SE")).collect();
    let ui: Vec<_> = (0..4).map(|_| b.add_vertex("UI")).collect();
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.add_edge(se[i], se[j]);
            b.add_edge(ui[i], ui[j]);
        }
    }
    for &s in &se[..2] {
        for &u in &ui[..2] {
            b.add_edge(s, u);
        }
    }
    (b.build(), se, ui)
}

#[test]
fn quickstart_flow_end_to_end() {
    let (g, se, ui) = quickstart_graph();
    assert_eq!(g.vertex_count(), 8);

    let params = BccParams::new(3, 3, 1);
    let query = BccQuery::pair(se[0], ui[0]);
    let result = OnlineBcc::default()
        .search(&g, &query, &params)
        .expect("the quickstart community exists");
    assert!(!result.community.is_empty());
    assert!(result.community.contains(&se[0]));
    assert!(result.community.contains(&ui[0]));
}

#[test]
fn facade_reexports_cover_the_full_pipeline() {
    let (g, se, ui) = quickstart_graph();

    // graph layer: views, labels, distances.
    let view = GraphView::new(&g);
    assert_eq!(g.label(se[0]), Label(0));
    assert_eq!(g.label(ui[0]), Label(1));
    assert!(bcc::graph::bfs_distances(&view, se[0])[ui[3].index()] < INF_DIST);

    // cohesion layer: decompositions.
    let coreness = core_decomposition(&view);
    assert!(coreness.iter().all(|&c| c >= 3), "{coreness:?}");
    let edge_index = bcc::cohesion::EdgeIndex::new(&g);
    let trussness = truss_decomposition(&g, &edge_index);
    assert!(!trussness.is_empty());

    // butterfly layer: the bridging butterfly is counted.
    let cross = BipartiteCross::new(g.label(se[0]), g.label(ui[0]));
    let counts = ButterflyCounts::compute(&view, cross);
    assert_eq!(counts.total(), 1);

    // core layer: all three searchers through the prelude types.
    let query = BccQuery::pair(se[0], ui[0]);
    let params = BccParams::new(3, 3, 1);
    let online = OnlineBcc::default().search(&g, &query, &params).unwrap();
    let lp = LpBcc::default().search(&g, &query, &params).unwrap();
    assert_eq!(online.community, lp.community);
    let index = BccIndex::build(&g);
    let l2p = L2pBcc::default().search(&g, &index, &query, &params).unwrap();
    assert!(!l2p.community.is_empty());

    // multi-label entry point and error type are reachable.
    let mquery = MbccQuery::new(vec![se[0], ui[0]]);
    let mparams = bcc::core::MbccParams::auto(&g, &mquery);
    let mresult = MultiLabelBcc::default().search(&g, Some(&index), &mquery, &mparams);
    assert!(
        !matches!(mresult, Err(SearchError::QueryOutOfRange(_))),
        "in-range query misreported"
    );

    // baselines + eval layers.
    let psa = PsaSearch::default().search(&g, &[se[0], ui[0]]).unwrap();
    assert!(f1_score(&psa.community, &online.community) > 0.0);
    let _ = (CtcSearch::default(), AcqSearch::default(), SearchStats::default());

    // datasets layer: a tiny planted network builds and yields queries.
    let net = PlantedNetwork::generate(PlantedConfig {
        communities: 2,
        community_size: (8, 10),
        ..Default::default()
    });
    assert!(net.graph.vertex_count() >= 16);
}
