//! Property-based tests over random labeled graphs: the core invariants of
//! every substrate, checked against brute-force oracles.

use bcc::prelude::*;
use proptest::prelude::*;

/// Strategy: a random 2-labeled graph as (left size, right size, edges).
fn random_bipartiteish() -> impl Strategy<Value = (usize, usize, Vec<(u8, u8)>)> {
    (2usize..8, 2usize..8).prop_flat_map(|(l, r)| {
        let edges = proptest::collection::vec(
            (0u8..(l + r) as u8, 0u8..(l + r) as u8),
            0..40,
        );
        (Just(l), Just(r), edges)
    })
}

fn build_two_label(l: usize, r: usize, edges: &[(u8, u8)]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..l + r)
        .map(|i| b.add_vertex(if i < l { "L" } else { "R" }))
        .collect();
    for &(x, y) in edges {
        let (x, y) = (x as usize % (l + r), y as usize % (l + r));
        if x != y {
            b.add_edge(vs[x], vs[y]);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 3 butterfly degrees match the O(n⁴) brute-force oracle on
    /// arbitrary labeled graphs (with homogeneous edges present as noise).
    #[test]
    fn butterfly_counts_match_brute_force((l, r, edges) in random_bipartiteish()) {
        let g = build_two_label(l, r, &edges);
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(Label(0), Label(1));
        let fast = bcc::butterfly::counting::butterfly_degrees(&view, cross);
        let oracle = bcc::butterfly::counting::brute_force_butterfly_degrees(&view, cross);
        prop_assert_eq!(fast, oracle);
    }

    /// The three global counters agree, and each equals Σχ/4.
    #[test]
    fn global_butterfly_counters_agree((l, r, edges) in random_bipartiteish()) {
        let g = build_two_label(l, r, &edges);
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(Label(0), Label(1));
        let counts = ButterflyCounts::compute(&view, cross);
        let total = counts.total();
        prop_assert_eq!(bcc::butterfly::counting::total_butterflies(&view, cross), total);
        prop_assert_eq!(bcc::butterfly::counting::total_butterflies_priority(&view, cross), total);
    }

    /// Algorithm 7's leader update equals the recount difference for every
    /// (leader, victim) pair.
    #[test]
    fn leader_update_equals_recount_diff(
        (l, r, edges) in random_bipartiteish(),
        leader_pick in 0usize..16,
        victim_pick in 0usize..16,
    ) {
        let g = build_two_label(l, r, &edges);
        let n = g.vertex_count();
        let leader = VertexId((leader_pick % n) as u32);
        let victim = VertexId((victim_pick % n) as u32);
        prop_assume!(leader != victim);
        let mut view = GraphView::new(&g);
        let cross = BipartiteCross::new(Label(0), Label(1));
        let before = bcc::butterfly::counting::butterfly_degrees(&view, cross);
        let dec = bcc::butterfly::update::leader_decrement(&view, cross, leader, victim);
        view.remove_vertex(victim);
        let after = bcc::butterfly::counting::butterfly_degrees(&view, cross);
        prop_assert_eq!(before[leader.index()] - dec, after[leader.index()]);
    }

    /// k-core peeling agrees with the bucket decomposition for every k.
    #[test]
    fn kcore_peeling_matches_decomposition((l, r, edges) in random_bipartiteish()) {
        let g = build_two_label(l, r, &edges);
        let coreness = bcc::cohesion::core_decomposition(&GraphView::new(&g));
        for k in 0..=5u32 {
            let mut view = GraphView::new(&g);
            bcc::cohesion::reduce_to_k_core(&mut view, k);
            for v in g.vertices() {
                prop_assert_eq!(view.is_alive(v), coreness[v.index()] >= k,
                    "k={} v={}", k, v);
            }
        }
    }

    /// Incremental distances equal fresh BFS after arbitrary deletions.
    #[test]
    fn incremental_distances_match_bfs(
        (l, r, edges) in random_bipartiteish(),
        deletions in proptest::collection::vec(0u8..16, 1..6),
    ) {
        let g = build_two_label(l, r, &edges);
        let n = g.vertex_count();
        let q = VertexId(0);
        let mut view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let mut inc = bcc::core::IncrementalDistances::compute(&view, &[q], &mut stats);
        for d in deletions {
            let v = VertexId((d as usize % n) as u32);
            if !view.is_alive(v) {
                continue;
            }
            view.remove_vertex(v);
            inc.update_after_removal(&view, &[v], &mut stats);
            let fresh = bcc::graph::bfs_distances(&view, q);
            prop_assert_eq!(&inc.dist[0], &fresh);
        }
    }

    /// Graph I/O round-trips arbitrary labeled graphs.
    #[test]
    fn io_roundtrip((l, r, edges) in random_bipartiteish()) {
        let g = build_two_label(l, r, &edges);
        let mut buf = Vec::new();
        bcc::graph::io::write_graph(&g, &mut buf).unwrap();
        let g2 = bcc::graph::io::read_graph(&buf[..]).unwrap();
        prop_assert_eq!(g.vertex_count(), g2.vertex_count());
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        for v in g.vertices() {
            prop_assert_eq!(g.label(v), g2.label(v));
        }
    }

    /// Truss maintenance keeps the k-truss invariant under random vertex
    /// batches.
    #[test]
    fn truss_invariant_under_deletions(
        (l, r, edges) in random_bipartiteish(),
        batch in proptest::collection::vec(0u8..16, 1..5),
        k in 3u32..5,
    ) {
        let g = build_two_label(l, r, &edges);
        let n = g.vertex_count();
        let mut state = bcc::cohesion::TrussState::k_truss(&g, k);
        let victims: Vec<VertexId> = batch
            .iter()
            .map(|&d| VertexId((d as usize % n) as u32))
            .collect();
        state.remove_vertices(&victims);
        prop_assert!(state.check_invariant());
        for v in victims {
            prop_assert!(!state.is_alive(v));
        }
    }

    /// Whatever any BCC search returns is a valid connected BCC.
    #[test]
    fn search_answers_are_always_valid(
        (l, r, edges) in random_bipartiteish(),
        k1 in 1u32..3,
        k2 in 1u32..3,
        b in 1u64..3,
    ) {
        let g = build_two_label(l, r, &edges);
        prop_assume!(l >= 1 && r >= 1);
        let pair = BccQuery::pair(VertexId(0), VertexId(l as u32));
        let params = BccParams::new(k1, k2, b);
        if let Ok(result) = OnlineBcc::default().search(&g, &pair, &params) {
            let view = GraphView::from_vertices(&g, result.community.iter().copied());
            prop_assert!(bcc::core::is_valid_bcc(&view, &pair, &params),
                "invalid community {:?} for k1={} k2={} b={}", result.community, k1, k2, b);
        }
    }
}
