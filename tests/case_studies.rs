//! Narrative assertions for the four case studies (Exps 6–8 and 11): the
//! communities the paper's figures show must be recovered by the library.

use bcc::core::{MbccParams, MbccQuery, MultiLabelBcc};
use bcc::prelude::*;

fn lp_search(graph: &bcc::graph::LabeledGraph, ql: &str, qr: &str, b: u64) -> BccResult {
    let ql = graph.vertex_by_name(ql).expect("query exists");
    let qr = graph.vertex_by_name(qr).expect("query exists");
    let index = BccIndex::build(graph);
    let params = BccParams {
        k1: index.coreness(ql),
        k2: index.coreness(qr),
        b,
    };
    LpBcc::default()
        .search(graph, &BccQuery::pair(ql, qr), &params)
        .expect("case-study community exists")
}

#[test]
fn flight_community_matches_figure_11() {
    let graph = bcc::datasets::flight_network(42);
    let result = lp_search(&graph, "Toronto", "Frankfurt", 3);
    // Figure 11(a): the 7 Canadian hubs and 6 German hubs, nothing else.
    let expected = [
        "Toronto", "Vancouver", "Montreal", "Calgary", "Ottawa", "Edmonton", "Winnipeg",
        "Frankfurt", "Munich", "Duesseldorf", "Hamburg", "Stuttgart", "Westerland",
    ];
    assert_eq!(result.len(), expected.len());
    for name in expected {
        let v = graph.vertex_by_name(name).unwrap();
        assert!(result.contains(&v), "{name} missing from the flight BCC");
    }
}

#[test]
fn flight_ctc_mixes_or_shrinks() {
    // The contrast of Figure 11(b): CTC cannot recover both full hub cores.
    let graph = bcc::datasets::flight_network(42);
    let toronto = graph.vertex_by_name("Toronto").unwrap();
    let frankfurt = graph.vertex_by_name("Frankfurt").unwrap();
    let index = bcc::baselines::CtcIndex::build(&graph);
    let ctc = CtcSearch::default()
        .search(&graph, &index, &[toronto, frankfurt])
        .unwrap();
    assert!(ctc.len() < 13, "CTC should miss part of the 13-city community");
}

#[test]
fn trade_community_contains_both_blocks() {
    let graph = bcc::datasets::trade_network(42);
    let result = lp_search(&graph, "United States", "China", 3);
    for name in [
        "United States", "China", "Japan", "Korea", "Mexico", "Canada", "Singapore",
        "Hong Kong", "India",
    ] {
        let v = graph.vertex_by_name(name).unwrap();
        assert!(result.contains(&v), "{name} missing from the trade BCC");
    }
    // Only the two queried continents appear (condition 1 of Def. 4).
    let labels: std::collections::HashSet<_> =
        result.community.iter().map(|&v| graph.label(v)).collect();
    assert_eq!(labels.len(), 2);
}

#[test]
fn fiction_community_matches_figure_13() {
    let graph = bcc::datasets::fiction_network();
    let result = lp_search(&graph, "Ron Weasley", "Draco Malfoy", 3);
    // Figure 13(a): the 18-member cross-camp community.
    let expected = [
        "Harry Potter", "Ron Weasley", "Hermione Granger", "Albus Dumbledore",
        "Ginny Weasley", "Fred Weasley", "George Weasley", "Bill Weasley",
        "Charlie Weasley", "Arthur Weasley", "Molly Weasley",
        "Lord Voldemort", "Draco Malfoy", "Lucius Malfoy", "Vincent Crabbe",
        "Vincent Crabbe Sr.", "Gregory Goyle", "Bellatrix Lestrange",
    ];
    assert_eq!(result.len(), expected.len(), "{:?}", named(&graph, &result));
    for name in expected {
        let v = graph.vertex_by_name(name).unwrap();
        assert!(result.contains(&v), "{name} missing from the fiction BCC");
    }
}

#[test]
fn fiction_ctc_finds_only_the_trio_clique() {
    // Figure 13(b): CTC returns {Harry, Ron, Hermione} × {Draco, Crabbe,
    // Goyle} and misses Lord Voldemort and the Weasley family.
    let graph = bcc::datasets::fiction_network();
    let ron = graph.vertex_by_name("Ron Weasley").unwrap();
    let draco = graph.vertex_by_name("Draco Malfoy").unwrap();
    let index = bcc::baselines::CtcIndex::build(&graph);
    let ctc = CtcSearch::default().search(&graph, &index, &[ron, draco]).unwrap();
    let names = named(&graph, &BccResult {
        community: ctc.community.clone(),
        query_distance: ctc.query_distance,
        iterations: ctc.iterations,
        leaders: Vec::new(),
        stats: Default::default(),
    });
    assert_eq!(ctc.len(), 6, "{names:?}");
    let voldemort = graph.vertex_by_name("Lord Voldemort").unwrap();
    let molly = graph.vertex_by_name("Molly Weasley").unwrap();
    assert!(!ctc.contains(&voldemort), "CTC famously misses Voldemort");
    assert!(!ctc.contains(&molly), "CTC misses Ron's family");
}

#[test]
fn academic_two_label_community_matches_figure_15a() {
    let graph = bcc::datasets::academic_network(42);
    let kraska = graph.vertex_by_name("Tim Kraska").unwrap();
    let jordan = graph.vertex_by_name("Michael I. Jordan").unwrap();
    let index = BccIndex::build(&graph);
    let result = MultiLabelBcc::default()
        .search(
            &graph,
            Some(&index),
            &MbccQuery::new(vec![kraska, jordan]),
            &MbccParams::uniform(2, 3, 3),
        )
        .expect("ML4DB community exists");
    assert!(result.contains(&kraska) && result.contains(&jordan));
    // Two fields only; the DB side is a 3-core.
    let db_members = result
        .community
        .iter()
        .filter(|&&v| graph.interner().name(graph.label(v)) == Some("Database"))
        .count();
    assert!(db_members >= 10, "DB group should be a sizable 3-core");
}

#[test]
fn academic_three_label_community_matches_figure_15b() {
    let graph = bcc::datasets::academic_network(42);
    let queries: Vec<_> = ["Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"]
        .iter()
        .map(|n| graph.vertex_by_name(n).unwrap())
        .collect();
    let index = BccIndex::build(&graph);
    let result = MultiLabelBcc::default()
        .search(
            &graph,
            Some(&index),
            &MbccQuery::new(queries.clone()),
            &MbccParams::uniform(3, 3, 3),
        )
        .expect("3-field community exists");
    for q in &queries {
        assert!(result.contains(q));
    }
    let fields: std::collections::HashSet<_> = result
        .community
        .iter()
        .map(|&v| graph.interner().name(graph.label(v)).unwrap())
        .collect();
    assert_eq!(
        fields,
        ["Database", "Machine Learning", "Systems and Networking"]
            .into_iter()
            .collect()
    );
    // The paper: "The database group is a 3-core and there are 13 vertices".
    let db_members = result
        .community
        .iter()
        .filter(|&&v| graph.interner().name(graph.label(v)) == Some("Database"))
        .count();
    assert_eq!(db_members, 13);
}

fn named(graph: &bcc::graph::LabeledGraph, result: &BccResult) -> Vec<String> {
    result.community.iter().map(|&v| graph.vertex_name(v)).collect()
}
