//! Failure-injection and corner-case tests across the search stack: the
//! graphs a downstream user will inevitably feed the library.

use bcc::core::{MbccParams, MbccQuery, MultiLabelBcc};
use bcc::prelude::*;

/// The minimal valid BCC: exactly one butterfly, nothing else.
fn minimal_butterfly() -> (bcc::graph::LabeledGraph, BccQuery) {
    let mut b = GraphBuilder::new();
    let l0 = b.add_vertex("L");
    let l1 = b.add_vertex("L");
    let r0 = b.add_vertex("R");
    let r1 = b.add_vertex("R");
    for (x, y) in [(l0, r0), (l0, r1), (l1, r0), (l1, r1)] {
        b.add_edge(x, y);
    }
    // Intra edges so (1,1)-cores exist.
    b.add_edge(l0, l1);
    b.add_edge(r0, r1);
    let g = b.build();
    (g, BccQuery::pair(l0, r0))
}

#[test]
fn minimal_butterfly_community() {
    let (g, q) = minimal_butterfly();
    let params = BccParams::new(1, 1, 1);
    for result in [
        OnlineBcc::default().search(&g, &q, &params).unwrap(),
        LpBcc::default().search(&g, &q, &params).unwrap(),
    ] {
        assert_eq!(result.community.len(), 4, "{:?}", result.community);
        assert_eq!(result.leaders.len(), 2);
    }
}

#[test]
fn k_zero_is_accepted() {
    // k = 0 imposes no core constraint; the butterfly condition still must
    // hold.
    let (g, q) = minimal_butterfly();
    let result = OnlineBcc::default().search(&g, &q, &BccParams::new(0, 0, 1)).unwrap();
    assert_eq!(result.community.len(), 4);
}

#[test]
fn b_zero_certifies_trivially() {
    // b = 0 means any vertex certifies the cross condition (χ ≥ 0).
    let mut b = GraphBuilder::new();
    let l0 = b.add_vertex("L");
    let l1 = b.add_vertex("L");
    let r0 = b.add_vertex("R");
    let r1 = b.add_vertex("R");
    b.add_edge(l0, l1);
    b.add_edge(r0, r1);
    b.add_edge(l0, r0); // a single cross edge, no butterfly
    let g = b.build();
    let result = OnlineBcc::default()
        .search(&g, &BccQuery::pair(l0, r0), &BccParams::new(1, 1, 0))
        .unwrap();
    assert_eq!(result.community.len(), 4);
    // With b = 1 the same query must fail (no butterfly exists).
    let err = OnlineBcc::default()
        .search(&g, &BccQuery::pair(l0, r0), &BccParams::new(1, 1, 1))
        .unwrap_err();
    assert_eq!(err, SearchError::NoCandidate);
}

#[test]
fn two_vertex_graph_has_no_bcc() {
    let mut b = GraphBuilder::new();
    let l = b.add_vertex("L");
    let r = b.add_vertex("R");
    b.add_edge(l, r);
    let g = b.build();
    let err = OnlineBcc::default()
        .search(&g, &BccQuery::pair(l, r), &BccParams::new(1, 1, 1))
        .unwrap_err();
    // Cores of size < 2 per side cannot exist with k = 1... actually a
    // single cross edge gives intra-degree 0 < 1 on both sides.
    assert_eq!(err, SearchError::NoCandidate);
}

#[test]
fn isolated_query_vertices() {
    let mut b = GraphBuilder::new();
    let l = b.add_vertex("L");
    let r = b.add_vertex("R");
    let _pad = b.add_vertex("L");
    let g = b.build();
    let err = OnlineBcc::default()
        .search(&g, &BccQuery::pair(l, r), &BccParams::new(0, 0, 0))
        .unwrap_err();
    assert!(
        err == SearchError::Disconnected || err == SearchError::NoCandidate,
        "{err:?}"
    );
}

#[test]
fn l2p_on_disconnected_labels() {
    // ql and qr in different components: the path search must fail cleanly.
    let mut b = GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
    let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    let g = b.build();
    let index = BccIndex::build(&g);
    let err = L2pBcc::default()
        .search(&g, &index, &BccQuery::pair(l[0], r[0]), &BccParams::new(3, 3, 1))
        .unwrap_err();
    assert_eq!(err, SearchError::Disconnected);
}

#[test]
fn mbcc_single_query_rejected() {
    let (g, q) = minimal_butterfly();
    let err = MultiLabelBcc::default()
        .search(
            &g,
            None,
            &MbccQuery::new(vec![q.ql]),
            &MbccParams::new(vec![1], 1),
        )
        .unwrap_err();
    assert_eq!(err, SearchError::TooFewQueries);
}

#[test]
fn huge_parameters_fail_gracefully() {
    let (g, q) = minimal_butterfly();
    for params in [
        BccParams::new(100, 1, 1),
        BccParams::new(1, 100, 1),
        BccParams::new(1, 1, u64::MAX),
    ] {
        let err = OnlineBcc::default().search(&g, &q, &params).unwrap_err();
        assert_eq!(err, SearchError::NoCandidate, "{params:?}");
    }
}

#[test]
fn query_vertices_may_be_leaders_or_not() {
    // Leader-biased vs junior-biased queries (Section 3.3): both must find
    // the same underlying community.
    let mut b = GraphBuilder::new();
    // Left: leaders l0, l1 carry the butterflies; juniors l2, l3 don't.
    let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
    let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    let g = b.build();
    let params = BccParams::new(3, 3, 1);
    let leaders = OnlineBcc::default()
        .search(&g, &BccQuery::pair(l[0], r[0]), &params)
        .unwrap();
    let juniors = OnlineBcc::default()
        .search(&g, &BccQuery::pair(l[3], r[3]), &params)
        .unwrap();
    assert_eq!(leaders.community, juniors.community,
        "the underlying community is identical regardless of query bias");
}

#[test]
fn acq_returns_empty_on_cross_label_queries() {
    // The executable version of the paper's Section 1 motivating argument.
    let (g, q) = minimal_butterfly();
    let err = AcqSearch::default().search_pair(&g, q.ql, q.qr).unwrap_err();
    assert_eq!(err, bcc::baselines::BaselineError::NoCommunity);
    // …while a BCC exists on the very same graph.
    assert!(OnlineBcc::default()
        .search(&g, &q, &BccParams::new(1, 1, 1))
        .is_ok());
}

#[test]
fn approximate_counts_track_exact_on_planted_networks() {
    let net = PlantedNetwork::generate(PlantedConfig {
        communities: 6,
        community_size: (20, 30),
        ..Default::default()
    });
    let view = GraphView::new(&net.graph);
    let cross = BipartiteCross::new(Label(0), Label(1));
    let exact = bcc::butterfly::counting::total_butterflies(&view, cross) as f64;
    let trials = 8;
    let mean: f64 = (0..trials)
        .map(|s| bcc::butterfly::approx_total_butterflies_pairs(&view, cross, 4000, s))
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - exact).abs() <= (exact * 0.3).max(10.0),
        "approx {mean} vs exact {exact}"
    );
}
