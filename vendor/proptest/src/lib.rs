//! Offline stand-in for the `proptest` crate (this workspace builds with no
//! network access; see `vendor/README.md`). Supports the subset the
//! workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_flat_map`, implemented for integer
//!   ranges, tuples of strategies, and [`strategy::Just`];
//! * [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, multiple
//!   `pattern in strategy` bindings, and doc attributes;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Failing cases are reported by ordinary panics with the generated inputs
//! visible through the assertion message; there is no shrinking and no
//! persisted failure seeds. Case generation is deterministic per test name.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let intermediate = self.source.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and RNG.

    /// The RNG driving case generation.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Runner configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// proptest's public alias for [`Config`].
    pub use self::Config as ProptestConfig;

    /// Deterministic per-test seed from the test's name.
    pub fn seed_from_name(name: &str) -> u64 {
        // FNV-1a, stable across runs and platforms.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        hash
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;
}

/// Defines property tests: each `pattern in strategy` binding is sampled
/// per case and the body re-runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strategy:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::__rt::SeedableRng as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_from_name(stringify!($name));
            let mut rng = $crate::__rt::ChaCha8Rng::seed_from_u64(seed);
            for _case in 0..config.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts within a property body (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Shim caveat: this expands to a bare `continue` targeting the case loop,
/// so it must be used at the top level of the property body — inside a
/// nested loop it would skip that loop's iteration instead of rejecting
/// the case (upstream proptest rejects the whole case from any depth).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u8>)> {
        (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u8..16, 0..10))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and assume/assert plumbing works.
        #[test]
        fn generated_values_in_bounds(x in 2usize..8, (n, bytes) in pair()) {
            prop_assume!(x != 2);
            prop_assert!((3..8).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(bytes.len() < 10);
            prop_assert_eq!(bytes.iter().filter(|&&b| b >= 16).count(), 0);
        }
    }
}
