//! Offline stand-in for the `criterion` crate (this workspace builds with no
//! network access; see `vendor/README.md`). Implements the API shape the
//! benches use — [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`black_box`], `criterion_group!`/`criterion_main!` — over a simple
//! median-of-samples wall-clock harness. No statistics, plots, or baselines;
//! swap the path dependency for real criterion to get them back.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in this shim).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    /// Per-sample duration of one iteration (timed-batch total ÷ batch).
    samples: Vec<Duration>,
    /// Iterations per timed batch; 0 until calibrated by the first sample.
    batch: u32,
}

/// A timed batch must span at least this long so per-iteration times are
/// not quantized to `Instant` granularity.
const MIN_BATCH_TIME: Duration = Duration::from_micros(200);

impl Bencher {
    /// Times `f` over a calibrated batch of iterations per sample,
    /// recording the mean per-iteration duration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.batch == 0 {
            // First sample calibrates: warm up once, then grow the batch
            // until it fills MIN_BATCH_TIME.
            black_box(f());
            let mut batch = 1u32;
            loop {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                let elapsed = start.elapsed();
                if elapsed >= MIN_BATCH_TIME || batch >= u32::MAX / 2 {
                    self.batch = batch;
                    self.samples.push(elapsed / batch);
                    return;
                }
                batch *= 2;
            }
        }
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.samples.push(start.elapsed() / self.batch);
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        batch: 0,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {label:<60} median {median:>12.2?} ({} samples × {} iters)",
        bencher.samples.len(),
        bencher.batch.max(1)
    );
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        // A closure slow enough that calibration settles on a small batch.
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                std::thread::sleep(std::time::Duration::from_micros(250));
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // 1 warm-up + 1-iteration calibration batch + 2 more samples.
        assert_eq!(calls, 4);
    }
}
