//! Offline stand-in for the `rayon` crate (this workspace builds with no
//! network access; see `vendor/README.md`). `par_iter()` returns a plain
//! sequential iterator, so the downstream `.map(..).collect()` chains
//! compile and run unchanged — serially. Swap this path dependency for real
//! rayon to restore parallelism; no call sites change.

pub mod iter {
    //! Parallel-iterator entry points (sequential here).

    /// `&self → par_iter()`, mirroring rayon's trait of the same name.
    pub trait IntoParallelRefIterator<'data> {
        /// The (sequential) iterator type.
        type Iter: Iterator;

        /// Iterates the collection; in this shim, sequentially.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `rayon::prelude`.
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_maps_and_collects() {
        let xs = vec![1u32, 2, 3];
        let doubled: Vec<u32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let slice: &[u32] = &xs;
        assert_eq!(slice.par_iter().sum::<u32>(), 6);
    }
}
