//! Offline stand-in for the `rand_chacha` crate (this workspace builds with
//! no network access; see `vendor/README.md`). [`ChaCha8Rng`] runs a genuine
//! ChaCha block function with 8 rounds, so output quality matches the real
//! generator; the word stream is not guaranteed bit-identical to upstream
//! `rand_chacha` (nothing in the workspace depends on that).

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Constants ‖ 8 key words ‖ 64-bit block counter ‖ 64-bit stream id.
    state: [u32; 16],
    /// Current 16-word output block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&mixed, &initial)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = mixed.wrapping_add(initial);
        }
        // Advance the 64-bit block counter (words 12–13).
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and stream id start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_looks_uniform() {
        // Coarse sanity check: mean of 4096 unit samples near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let sum: f64 = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_works_through_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let counts = (0..1000).fold([0usize; 5], |mut acc, _| {
            acc[rng.gen_range(0..5usize)] += 1;
            acc
        });
        assert!(counts.iter().all(|&c| c > 100), "{counts:?}");
    }
}
