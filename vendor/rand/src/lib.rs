//! Offline stand-in for the `rand` 0.8 crate (this workspace builds with no
//! network access; see `vendor/README.md`). Provides the exact trait surface
//! the workspace uses:
//!
//! * [`RngCore`] — raw 32/64-bit output,
//! * [`Rng`] — `gen_range` (half-open and inclusive integer ranges, plus
//!   `f64`) and `gen_bool`,
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` (the latter expands the
//!   `u64` with SplitMix64, like upstream rand),
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are NOT bit-compatible with upstream rand; everything in the
//! workspace that consumes randomness only relies on determinism-per-seed
//! and statistical quality, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Raw random-number output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (panics on an empty range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 random bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from (the subset of rand's `SampleRange`
/// the workspace needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform in `[0, span)` via Lemire's multiply-shift rejection.
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * span as u128) >> 64) as u64;
        let lo = (x as u128 * span as u128) as u64;
        if lo >= span.wrapping_neg() % span {
            return hi;
        }
        // Rejected (probability < span / 2^64); resample.
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (as upstream rand).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related sampling: `SliceRandom`.

    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=3u64);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
