//! # bcc — Butterfly-Core Community Search over Labeled Graphs
//!
//! A full Rust reproduction of *Butterfly-Core Community Search over Labeled
//! Graphs* (Dong, Huang, Yuan, Zhu, Xiong — PVLDB 14(1), 2021).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — labeled-graph storage, views, traversal, I/O.
//! * [`cohesion`] — k-core and k-truss decomposition/maintenance.
//! * [`butterfly`] — butterfly counting, degree updates, leader pairs.
//! * [`core`] — the BCC model and the Online-BCC / LP-BCC / L2P-BCC / mBCC
//!   search algorithms.
//! * [`baselines`] — CTC (closest truss community) and PSA (progressive
//!   minimum k-core) comparison methods.
//! * [`datasets`] — labeled-graph generators with ground-truth communities,
//!   the paper's case-study networks, and query workloads.
//! * [`eval`] — F1 metrics, instrumentation, and table formatting.
//! * [`service`] — the concurrent query-serving subsystem: graph registry,
//!   worker pool, LRU result cache, and the `bcc serve` line protocol.
//!
//! ## Quickstart
//!
//! ```
//! use bcc::prelude::*;
//!
//! // Build a small professional network: two dense teams + cross edges.
//! let mut b = GraphBuilder::new();
//! let se: Vec<_> = (0..4).map(|_| b.add_vertex("SE")).collect();
//! let ui: Vec<_> = (0..4).map(|_| b.add_vertex("UI")).collect();
//! for i in 0..4 {
//!     for j in (i + 1)..4 {
//!         b.add_edge(se[i], se[j]);
//!         b.add_edge(ui[i], ui[j]);
//!     }
//! }
//! // A butterfly between the teams: {se0, se1} x {ui0, ui1}.
//! for &s in &se[..2] {
//!     for &u in &ui[..2] {
//!         b.add_edge(s, u);
//!     }
//! }
//! let g = b.build();
//!
//! let params = BccParams::new(3, 3, 1);
//! let query = BccQuery::pair(se[0], ui[0]);
//! let result = OnlineBcc::default().search(&g, &query, &params).unwrap();
//! assert!(result.community.contains(&se[0]));
//! assert!(result.community.contains(&ui[0]));
//! ```

pub use bcc_baselines as baselines;
pub use bcc_butterfly as butterfly;
pub use bcc_cohesion as cohesion;
pub use bcc_core as core;
pub use bcc_datasets as datasets;
pub use bcc_eval as eval;
pub use bcc_graph as graph;
pub use bcc_service as service;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use bcc_baselines::{AcqSearch, CtcSearch, PsaSearch};
    pub use bcc_butterfly::{BipartiteCross, ButterflyCounts};
    pub use bcc_cohesion::{core_decomposition, truss_decomposition};
    pub use bcc_core::{
        BccIndex, BccParams, BccQuery, BccResult, L2pBcc, LpBcc, MbccQuery, MultiLabelBcc,
        OnlineBcc, SearchError,
    };
    pub use bcc_datasets::{PlantedConfig, PlantedNetwork};
    pub use bcc_eval::{f1_score, SearchStats};
    pub use bcc_graph::{
        GraphBuilder, GraphDelta, GraphView, Label, LabeledGraph, VertexId, INF_DIST,
    };
    pub use bcc_service::{
        BccService, LineOutcome, MutateRequest, MutateResponse, QueryRequest, QueryResponse,
        ServiceConfig, ServiceStats,
    };
}
