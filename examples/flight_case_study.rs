//! The Figure 11 flight-network case study as a library walkthrough:
//! find the cross-country flight community between Toronto and Frankfurt
//! and inspect why the label-blind CTC baseline misses it.
//!
//! `cargo run --release --example flight_case_study`

use bcc::prelude::*;

fn main() {
    let graph = bcc::datasets::flight_network(42);
    let toronto = graph.vertex_by_name("Toronto").expect("Toronto exists");
    let frankfurt = graph.vertex_by_name("Frankfurt").expect("Frankfurt exists");
    println!(
        "flight network: {} cities / {} routes / {} countries",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // The paper's Exp-6 setting: b = 3, k from the queries' coreness.
    let index = BccIndex::build(&graph);
    let params = BccParams {
        k1: index.coreness(toronto),
        k2: index.coreness(frankfurt),
        b: 3,
    };
    println!(
        "query = {{Toronto [Canada], Frankfurt [Germany]}}, k1={}, k2={}, b={}",
        params.k1, params.k2, params.b
    );

    let result = LpBcc::default()
        .search(&graph, &BccQuery::pair(toronto, frankfurt), &params)
        .expect("the planted transatlantic community exists");
    println!(
        "\nBCC community ({} cities, diameter {}):",
        result.len(),
        result.diameter(&graph)
    );
    let mut by_country: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for &v in &result.community {
        by_country
            .entry(graph.interner().name(graph.label(v)).unwrap().to_string())
            .or_default()
            .push(graph.vertex_name(v));
    }
    for (country, mut cities) in by_country {
        cities.sort();
        println!("  {country}: {}", cities.join(", "));
    }

    // The CTC baseline on the same query, for contrast.
    let ctc_index = CtcSearch::default();
    let truss_index = bcc::baselines::CtcIndex::build(&graph);
    let ctc = ctc_index
        .search(&graph, &truss_index, &[toronto, frankfurt])
        .expect("CTC finds some dense subgraph");
    println!("\nCTC community ({} cities):", ctc.len());
    for &v in &ctc.community {
        println!(
            "  {} [{}]",
            graph.vertex_name(v),
            graph.interner().name(graph.label(v)).unwrap()
        );
    }
    println!(
        "\nBCC captures both domestic hub cores; CTC's label-blind truss keeps only {} of the {} BCC members.",
        ctc.community.iter().filter(|v| result.contains(v)).count(),
        result.len()
    );
}
