//! Quickstart: build the paper's Figure 1 professional network by hand and
//! search the (4, 3, 1)-BCC of Figure 2 with all three methods.
//!
//! `cargo run --release --example quickstart`

use bcc::prelude::*;

fn main() {
    // Figure 1: an IT professional network with three roles. Vertices are
    // named after the paper's figure (ql, v1..v10 are SE; qr, u1..u9 are UI;
    // z1 is PM).
    let mut b = GraphBuilder::new();
    let ql = b.add_named_vertex("ql", "SE");
    let v: Vec<_> = (1..=10)
        .map(|i| b.add_named_vertex(&format!("v{i}"), "SE"))
        .collect();
    let qr = b.add_named_vertex("qr", "UI");
    let u: Vec<_> = (1..=9)
        .map(|i| b.add_named_vertex(&format!("u{i}"), "UI"))
        .collect();
    let z1 = b.add_named_vertex("z1", "PM");

    // SE side: ql and v1..v5 form a dense 4-core team; v6..v10 are a second
    // SE team further away.
    let left_team = [ql, v[0], v[1], v[2], v[3], v[4]];
    for i in 0..left_team.len() {
        for j in (i + 1)..left_team.len() {
            if !(i == 1 && j == 3) {
                // one missing edge keeps it a 4-core, not a clique
                b.add_edge(left_team[i], left_team[j]);
            }
        }
    }
    let far_team = [v[5], v[6], v[7], v[8], v[9]];
    for i in 0..far_team.len() {
        for j in (i + 1)..far_team.len() {
            b.add_edge(far_team[i], far_team[j]);
        }
    }
    b.add_edge(v[4], v[5]); // bridge between the SE teams

    // UI side: qr and u1..u5 form a 3-core; u6..u9 hang off it.
    let right_team = [qr, u[0], u[1], u[2], u[4]];
    for i in 0..right_team.len() {
        for j in (i + 1)..right_team.len() {
            if !(i == 0 && j == 4) {
                b.add_edge(right_team[i], right_team[j]);
            }
        }
    }
    b.add_edge(u[2], u[3]);
    b.add_edge(u[3], u[4]);
    b.add_edge(u[5], u[0]);
    b.add_edge(u[5], u[6]);
    b.add_edge(u[6], u[7]);
    b.add_edge(u[7], u[8]);

    // Cross-role collaborations (dashed edges): the butterfly of Figure 2 is
    // {ql, v5} x {qr, u3} — here v[4] is "v5" and u[2] is "u3".
    b.add_edge(ql, qr);
    b.add_edge(ql, u[2]);
    b.add_edge(v[4], qr);
    b.add_edge(v[4], u[2]);
    // The PM vertex touches both teams but has the wrong label.
    b.add_edge(z1, ql);
    b.add_edge(z1, qr);

    let graph = b.build();
    println!(
        "graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // The paper's Example 3: Q = {ql, qr}, k1 = 4, k2 = 3, b = 1.
    let query = BccQuery::pair(ql, qr);
    let params = BccParams::new(4, 3, 1);

    let online = OnlineBcc::default().search(&graph, &query, &params).unwrap();
    let lp = LpBcc::default().search(&graph, &query, &params).unwrap();
    let index = BccIndex::build(&graph);
    let l2p = L2pBcc::default().search(&graph, &index, &query, &params).unwrap();

    for (name, result) in [("Online-BCC", &online), ("LP-BCC", &lp), ("L2P-BCC", &l2p)] {
        let members: Vec<String> = result.community.iter().map(|&v| graph.vertex_name(v)).collect();
        println!(
            "{name:>10}: {} members, query distance {}, diameter {} -> {}",
            result.len(),
            result.query_distance,
            result.diameter(&graph),
            members.join(", ")
        );
    }

    // The answer is the Figure 2 community: both query teams, no PM vertex,
    // no far SE team.
    assert!(online.contains(&ql) && online.contains(&qr));
    assert!(!online.contains(&z1), "PM vertex must be excluded");
    assert!(!online.contains(&v[7]), "the far SE team must be peeled");
    println!("\nFigure 2 community recovered.");
}
