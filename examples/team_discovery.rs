//! Professional team discovery: generate a Baidu-style labeled professional
//! network with ground-truth cross-department project teams, run all the
//! search methods on the same query, and compare their F1 against the
//! ground truth — the Section 3.6 "professional team discovery" application
//! at example scale.
//!
//! `cargo run --release --example team_discovery`

use bcc::datasets::{queries::CommunityQuery, QueryConstraints};
use bcc::prelude::*;

fn main() {
    // A small Baidu-1-like network: many departments (labels), communities
    // formed by two-department project teams.
    let net = PlantedNetwork::generate(PlantedConfig {
        communities: 30,
        community_size: (20, 44),
        label_pool: 100,
        ..Default::default()
    });
    println!(
        "professional network: {} employees, {} collaboration edges, {} departments, {} project teams",
        net.graph.vertex_count(),
        net.graph.edge_count(),
        net.graph.label_count(),
        net.community_count()
    );

    let queries = bcc::datasets::random_community_queries(
        &net,
        12,
        QueryConstraints::default(),
        2026,
    );
    println!("{} queries generated (degree rank 80%, inter-distance 1)\n", queries.len());

    let index = BccIndex::build(&net.graph);
    let ctc_index = bcc::baselines::CtcIndex::build(&net.graph);

    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    let mut eval = |name: &'static str, f: &dyn Fn(&CommunityQuery) -> Option<Vec<VertexId>>| {
        let mut f1_sum = 0.0;
        let mut secs = 0.0;
        for q in &queries {
            let started = std::time::Instant::now();
            let community = f(q);
            secs += started.elapsed().as_secs_f64();
            if let Some(c) = community {
                f1_sum += f1_score(&c, net.community(q.community));
            }
        }
        rows.push((name, f1_sum / queries.len() as f64, secs / queries.len() as f64));
    };

    eval("PSA", &|q| {
        PsaSearch::default()
            .search(&net.graph, &q.vertices)
            .ok()
            .map(|r| r.community)
    });
    eval("CTC", &|q| {
        CtcSearch::default()
            .search(&net.graph, &ctc_index, &q.vertices)
            .ok()
            .map(|r| r.community)
    });
    let params_for = |q: &CommunityQuery| BccParams {
        k1: index.coreness(q.vertices[0]),
        k2: index.coreness(q.vertices[1]),
        b: 1,
    };
    eval("Online-BCC", &|q| {
        OnlineBcc::default()
            .search(&net.graph, &BccQuery::pair(q.vertices[0], q.vertices[1]), &params_for(q))
            .ok()
            .map(|r| r.community)
    });
    eval("LP-BCC", &|q| {
        LpBcc::default()
            .search(&net.graph, &BccQuery::pair(q.vertices[0], q.vertices[1]), &params_for(q))
            .ok()
            .map(|r| r.community)
    });
    eval("L2P-BCC", &|q| {
        L2pBcc::default()
            .search(&net.graph, &index, &BccQuery::pair(q.vertices[0], q.vertices[1]), &params_for(q))
            .ok()
            .map(|r| r.community)
    });

    println!("{:<12} {:>8} {:>12}", "method", "mean F1", "mean time(s)");
    for (name, f1, secs) in &rows {
        println!("{name:<12} {f1:>8.3} {secs:>12.5}");
    }
    let best = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!("\nbest quality: {} (F1 = {:.3})", best.0, best.1);
}
