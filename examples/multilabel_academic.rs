//! Multi-labeled BCC search (Section 7) on the academic collaboration
//! network: the Figure 15(b) three-field query {Franklin, Jordan, Stoica}
//! across Database × Machine Learning × Systems, comparing all three mBCC
//! engine strategies.
//!
//! `cargo run --release --example multilabel_academic`

use bcc::core::{MultiStrategy, PathWeights};
use bcc::prelude::*;

fn main() {
    let graph = bcc::datasets::academic_network(42);
    let queries: Vec<_> = ["Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"]
        .iter()
        .map(|n| graph.vertex_by_name(n).expect("anchor scholars exist"))
        .collect();
    println!(
        "academic network: {} authors, {} collaborations, {} fields",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    let index = BccIndex::build(&graph);
    let query = MbccQuery::new(queries.clone());
    let params = bcc::core::MbccParams::uniform(3, 3, 3);

    for (name, strategy) in [
        ("Online (Alg. 9)", MultiStrategy::Online),
        ("LeaderPair", MultiStrategy::LeaderPair),
        (
            "Local (L2P)",
            MultiStrategy::Local {
                eta: 512,
                weights: PathWeights::default(),
            },
        ),
    ] {
        let searcher = MultiLabelBcc::with_strategy(strategy);
        match searcher.search(&graph, Some(&index), &query, &params) {
            Ok(result) => {
                let mut per_field: std::collections::BTreeMap<&str, usize> = Default::default();
                for &v in &result.community {
                    *per_field
                        .entry(graph.interner().name(graph.label(v)).unwrap())
                        .or_default() += 1;
                }
                let breakdown: Vec<String> = per_field
                    .iter()
                    .map(|(f, n)| format!("{f}: {n}"))
                    .collect();
                println!(
                    "{name:<18} -> {} members (qd {}) [{}]",
                    result.len(),
                    result.query_distance,
                    breakdown.join(", ")
                );
                for &q in &queries {
                    assert!(result.contains(&q));
                }
            }
            Err(e) => println!("{name:<18} -> failed: {e}"),
        }
    }

    println!("\nCross-group connectivity (Def. 7): the ML and Systems groups are only");
    println!("linked through the Database group's butterflies — the mBCC keeps all");
    println!("three fields in one connected community.");
}
